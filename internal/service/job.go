package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"irred/internal/fault"
	"irred/internal/inspector"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// ContribSpec declares the per-iteration contribution of a raw reduction
// job. Contributions must be declarative — they travel over the wire — so
// the service supports the shapes the paper's kernels need:
//
//   - "ones":    every reference of iteration i adds 1 (connectivity counts,
//     histogram-style reductions);
//   - "weights": every reference adds Weights[i] (weighted accumulation);
//   - "pair":    reference 0 adds +Weights[i], reference 1 adds -Weights[i]
//     (equal-and-opposite flux/force form; requires exactly 2 references).
type ContribSpec struct {
	Kind    string    `json:"kind"`
	Weights []float64 `json:"weights,omitempty"`
}

// LoopSpec is one loop of a raw multi-loop program. A nil Ind inherits
// the spec's base indirection arrays — the declarative way to say "this
// loop traverses the same connectivity as the program's base loop", which
// is exactly the shape whose inspection the service amortizes: loops with
// identical indirection contents share one schedule set (content-addressed
// by inspector.ScheduleKey, the serving-side analogue of the compiler's
// schedule-reuse license) instead of each paying the LightInspector. A nil
// Contrib inherits the base contribution spec.
type LoopSpec struct {
	Ind     [][]int32    `json:"ind,omitempty"`
	Contrib *ContribSpec `json:"contrib,omitempty"`
}

// JobSpec describes one reduction job: either a named kernel over a
// generated dataset (mvm | euler | moldyn, regenerated deterministically
// from Dataset+Seed so results are bit-reproducible across processes), or a
// raw irregular reduction given by indirection arrays and a contribution
// spec. The strategy (P, K, Dist) plus the indirection contents key the
// schedule cache.
type JobSpec struct {
	// Named-kernel form.
	Kernel  string `json:"kernel,omitempty"`  // mvm | euler | moldyn
	Dataset string `json:"dataset,omitempty"` // 2k|10k (euler, moldyn); S|W|A|B (mvm)
	Seed    int64  `json:"seed,omitempty"`

	// Raw-reduction form.
	NumIters int          `json:"num_iters,omitempty"`
	NumElems int          `json:"num_elems,omitempty"`
	Ind      [][]int32    `json:"ind,omitempty"`
	Contrib  *ContribSpec `json:"contrib,omitempty"`

	// Loops, when non-empty, turns a raw job into a multi-loop program:
	// each sweep runs the loops in order against one shared reduction
	// array (loop l+1 sees loop l's contributions of the same sweep, the
	// way consecutive fissioned loops chain in a compiled program). All
	// loops share the spec's iteration/element extents and strategy; each
	// loop inherits Ind/Contrib unless it carries its own. Loops whose
	// effective indirection contents coincide execute against one shared
	// schedule set — inspected once per distinct content, not once per
	// loop. Multi-loop jobs run native-only, with no chaos and no
	// checkpointing.
	Loops []LoopSpec `json:"loops,omitempty"`

	// Strategy and run length.
	P     int    `json:"p"`
	K     int    `json:"k"`
	Dist  string `json:"dist,omitempty"` // block | cyclic (default cyclic)
	Steps int    `json:"steps,omitempty"`

	// TimeoutMS bounds the job's wall-clock run; 0 means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Engine selects the executor for raw jobs: "native" (default, the
	// shared-array engine) or "distributed" (the message-passing engine
	// with the hardened rotation protocol — the one that can absorb
	// injected payload faults). Named kernels always run native.
	Engine string `json:"engine,omitempty"`

	// Chaos, when non-nil, runs the job under the deterministic fault
	// injector. The server rejects it unless started with chaos enabled —
	// fault injection is a test instrument, not a tenant-facing feature.
	Chaos *fault.Spec `json:"chaos,omitempty"`

	// CheckpointEvery persists the reduction array and sweep counter every
	// this many sweeps (raw multi-sweep jobs only, and only when the
	// service has a disk directory). A restarted daemon resumes the job
	// from its last checkpoint instead of recomputing from sweep 0.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// Auto asks the service to pick the execution strategy from its BENCH
	// trajectory tuner: (engine, P, k, dist) are overwritten by the
	// measured-fastest usable cell for this workload (or the paper's
	// heuristic defaults when the daemon has no trajectory). The spec's own
	// P/K/Dist/Engine values are ignored and may be zero.
	Auto bool `json:"auto,omitempty"`

	// ClusterUID identifies one logical job across the fleet: the routing
	// node stamps it before forwarding, and every replay of the job — on
	// the same node after a retry, or on the ring successor after the
	// owner died — carries the same uid. The service dedupes on it (a
	// resubmitted uid attaches to the live job instead of running twice)
	// and seeds replayed jobs from the uid's replicated IRCJ checkpoint
	// when the cluster layer holds one. Empty outside cluster mode.
	ClusterUID string `json:"cluster_uid,omitempty"`
}

// workload maps a spec onto the BENCH trajectory's (kernel, class)
// vocabulary. Named kernels map directly (with the dataset name's
// canonical case); raw jobs bucket by iteration count onto the sweep
// harness's raw classes, so a raw job is tuned from the measurements of
// the nearest-sized synthetic workload.
func (sp *JobSpec) workload() (kernel, class string) {
	if !sp.IsRaw() {
		if sp.Kernel == "mvm" {
			return sp.Kernel, strings.ToUpper(sp.Dataset)
		}
		return sp.Kernel, strings.ToLower(sp.Dataset)
	}
	switch {
	case sp.NumIters <= 1024:
		return "raw", "tiny"
	case sp.NumIters <= 8192:
		return "raw", "small"
	default:
		return "raw", "large"
	}
}

// IsRaw reports whether the spec is a raw reduction (no named kernel).
func (sp *JobSpec) IsRaw() bool { return sp.Kernel == "" }

// RoutingKey returns the content key the cluster routes this job by. Raw
// jobs key on inspector.ScheduleKey over the base loop — the exact key of
// the schedule-cache entry the job will populate or hit — so consistent
// hashing shards the warm cache naturally: every job with the same
// traversal and strategy lands on the node already holding its schedules.
// Named kernels regenerate their dataset deterministically from
// (dataset, seed), so a cheap literal key stands in for the content hash
// with the same collision-free sharding property.
func (sp *JobSpec) RoutingKey() string {
	if !sp.IsRaw() {
		return fmt.Sprintf("kernel:%s/%s/%d/p%d/k%d/%s",
			sp.Kernel, sp.Dataset, sp.Seed, sp.P, sp.K, strings.ToLower(sp.Dist))
	}
	dist, err := sp.dist()
	if err != nil {
		dist = inspector.Cyclic
	}
	return inspector.ScheduleKey(inspector.Config{
		P: sp.P, K: sp.K,
		NumIters: sp.NumIters,
		NumElems: sp.NumElems,
		Dist:     dist,
	}, sp.Ind...)
}

// numLoops returns how many loops a raw job runs per sweep (at least 1:
// a spec without Loops is the single-loop program it always was).
func (sp *JobSpec) numLoops() int {
	if len(sp.Loops) == 0 {
		return 1
	}
	return len(sp.Loops)
}

// loopInd returns loop l's effective indirection arrays: its own when it
// carries some, the spec's base arrays otherwise.
func (sp *JobSpec) loopInd(l int) [][]int32 {
	if len(sp.Loops) > 0 && sp.Loops[l].Ind != nil {
		return sp.Loops[l].Ind
	}
	return sp.Ind
}

// loopContrib returns loop l's effective contribution spec (own or
// inherited).
func (sp *JobSpec) loopContrib(l int) *ContribSpec {
	if len(sp.Loops) > 0 && sp.Loops[l].Contrib != nil {
		return sp.Loops[l].Contrib
	}
	return sp.Contrib
}

// dist parses the distribution name (default cyclic).
func (sp *JobSpec) dist() (inspector.Dist, error) {
	switch strings.ToLower(sp.Dist) {
	case "", "cyclic":
		return inspector.Cyclic, nil
	case "block":
		return inspector.Block, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", sp.Dist)
	}
}

// distributed reports whether the job runs on the message-passing engine.
func (sp *JobSpec) distributed() bool { return strings.ToLower(sp.Engine) == "distributed" }

// steps returns the run length, defaulting to 1.
func (sp *JobSpec) steps() int {
	if sp.Steps <= 0 {
		return 1
	}
	return sp.Steps
}

// Validate rejects malformed specs before admission, so the queue only
// holds runnable work.
func (sp *JobSpec) Validate() error {
	if sp.P < 1 || sp.P > 4096 {
		return fmt.Errorf("p = %d, need 1..4096", sp.P)
	}
	if sp.K < 1 || sp.K > 64 {
		return fmt.Errorf("k = %d, need 1..64", sp.K)
	}
	if sp.Steps < 0 || sp.Steps > 1_000_000 {
		return fmt.Errorf("steps = %d, need 0..1000000", sp.Steps)
	}
	if _, err := sp.dist(); err != nil {
		return err
	}
	switch strings.ToLower(sp.Engine) {
	case "", "native":
	case "distributed":
		if !sp.IsRaw() {
			return fmt.Errorf("engine %q supports raw reduction jobs only", sp.Engine)
		}
	default:
		return fmt.Errorf("unknown engine %q (native | distributed)", sp.Engine)
	}
	if sp.Chaos != nil {
		if err := sp.Chaos.Validate(); err != nil {
			return err
		}
		if !sp.IsRaw() {
			return fmt.Errorf("chaos injection supports raw reduction jobs only")
		}
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("checkpoint_every = %d", sp.CheckpointEvery)
	}
	if len(sp.ClusterUID) > 128 {
		return fmt.Errorf("cluster_uid is %d bytes, max 128", len(sp.ClusterUID))
	}
	if !sp.IsRaw() {
		switch sp.Kernel {
		case "mvm":
			switch strings.ToUpper(sp.Dataset) {
			case "S", "W", "A", "B":
			default:
				return fmt.Errorf("mvm datasets: S, W, A, B (got %q)", sp.Dataset)
			}
		case "euler", "moldyn":
			switch strings.ToLower(sp.Dataset) {
			case "2k", "10k":
			default:
				return fmt.Errorf("%s datasets: 2k, 10k (got %q)", sp.Kernel, sp.Dataset)
			}
		default:
			return fmt.Errorf("unknown kernel %q", sp.Kernel)
		}
		return nil
	}
	// Raw form.
	if sp.NumElems < 1 {
		return fmt.Errorf("num_elems = %d, need >= 1", sp.NumElems)
	}
	if sp.NumIters < 0 {
		return fmt.Errorf("num_iters = %d", sp.NumIters)
	}
	if len(sp.Loops) == 0 {
		return sp.validateLoop(sp.Ind, sp.Contrib)
	}
	// Multi-loop program: shared extents and strategy, per-loop traversal
	// and contribution. The executor for chained loops is native-only and
	// runs in one pass — no wire to inject faults into, no per-loop sweep
	// counter a checkpoint could name.
	if len(sp.Loops) > 8 {
		return fmt.Errorf("multi-loop job has %d loops, max 8", len(sp.Loops))
	}
	if sp.distributed() {
		return fmt.Errorf("multi-loop jobs run on the native engine only")
	}
	if sp.Chaos != nil {
		return fmt.Errorf("multi-loop jobs do not accept chaos specs")
	}
	if sp.CheckpointEvery > 0 {
		return fmt.Errorf("multi-loop jobs do not checkpoint")
	}
	for l := range sp.Loops {
		if err := sp.validateLoop(sp.loopInd(l), sp.loopContrib(l)); err != nil {
			return fmt.Errorf("loop %d: %w", l, err)
		}
	}
	return nil
}

// validateLoop checks one loop's effective indirection arrays and
// contribution spec against the spec's shared extents.
func (sp *JobSpec) validateLoop(ind [][]int32, contrib *ContribSpec) error {
	if len(ind) == 0 {
		return fmt.Errorf("raw job needs at least one indirection array")
	}
	if len(ind) > 16 {
		return fmt.Errorf("raw job has %d indirection arrays, max 16", len(ind))
	}
	for r, a := range ind {
		if len(a) != sp.NumIters {
			return fmt.Errorf("ind[%d] has %d entries, want num_iters = %d", r, len(a), sp.NumIters)
		}
		for i, v := range a {
			if int(v) < 0 || int(v) >= sp.NumElems {
				return fmt.Errorf("ind[%d][%d] = %d outside [0,%d)", r, i, v, sp.NumElems)
			}
		}
	}
	if contrib == nil {
		return fmt.Errorf("raw job needs a contribution spec")
	}
	switch contrib.Kind {
	case "ones":
		if len(contrib.Weights) != 0 {
			return fmt.Errorf(`contrib "ones" takes no weights`)
		}
	case "weights":
		if len(contrib.Weights) != sp.NumIters {
			return fmt.Errorf("contrib weights has %d entries, want %d", len(contrib.Weights), sp.NumIters)
		}
	case "pair":
		if len(ind) != 2 {
			return fmt.Errorf(`contrib "pair" needs exactly 2 indirection arrays, got %d`, len(ind))
		}
		if len(contrib.Weights) != sp.NumIters {
			return fmt.Errorf("contrib weights has %d entries, want %d", len(contrib.Weights), sp.NumIters)
		}
	default:
		return fmt.Errorf("unknown contrib kind %q (ones | weights | pair)", contrib.Kind)
	}
	return nil
}

// contrib builds the rts.ContribFunc of a single-loop raw job.
func (sp *JobSpec) contrib() func(p, i int, out []float64) { return sp.contribFor(0) }

// contribFor builds the rts.ContribFunc of loop l. The returned closure is
// stateless, so it is safe for every processor goroutine.
func (sp *JobSpec) contribFor(l int) func(p, i int, out []float64) {
	numRef := len(sp.loopInd(l))
	c := sp.loopContrib(l)
	switch c.Kind {
	case "ones":
		return func(_, _ int, out []float64) {
			for r := 0; r < numRef; r++ {
				out[r] = 1
			}
		}
	case "weights":
		w := c.Weights
		return func(_, i int, out []float64) {
			for r := 0; r < numRef; r++ {
				out[r] = w[i]
			}
		}
	default: // "pair"
		w := c.Weights
		return func(_, i int, out []float64) {
			out[0] = w[i]
			out[1] = -w[i]
		}
	}
}

// SequentialRaw computes the reference result of a raw reduction job in
// plain program order — the oracle the service's executor must reproduce.
// When the contributions are exactly representable (integral weights), the
// parallel result is bitwise equal regardless of summation order; otherwise
// it matches within floating-point reassociation error.
func (sp *JobSpec) SequentialRaw() ([]float64, error) {
	if !sp.IsRaw() {
		return nil, fmt.Errorf("service: SequentialRaw on a named-kernel job")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	x := make([]float64, sp.NumElems)
	nl := sp.numLoops()
	inds := make([][][]int32, nl)
	fns := make([]func(p, i int, out []float64), nl)
	scratches := make([][]float64, nl)
	for l := 0; l < nl; l++ {
		inds[l] = sp.loopInd(l)
		fns[l] = sp.contribFor(l)
		scratches[l] = make([]float64, len(inds[l]))
	}
	for step := 0; step < sp.steps(); step++ {
		for l := 0; l < nl; l++ {
			ind := inds[l]
			fn := fns[l]
			scratch := scratches[l]
			for i := 0; i < sp.NumIters; i++ {
				fn(0, i, scratch)
				for r := range ind {
					x[ind[r][i]] += scratch[r]
				}
			}
		}
	}
	return x, nil
}

// HashResult returns the hex SHA-256 over the raw little-endian bits of a
// result vector — the cheap cross-process equality check used by the
// client, the CI smoke test, and irredrun -json.
func HashResult(x []float64) string {
	h := sha256.New()
	buf := make([]byte, 0, 8*256)
	for len(x) > 0 {
		n := len(x)
		if n > 256 {
			n = 256
		}
		buf = buf[:0]
		for _, v := range x[:n] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		h.Write(buf)
		x = x[n:]
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID           string  `json:"id"`
	State        State   `json:"state"`
	Error        string  `json:"error,omitempty"`
	CacheHit     bool    `json:"cache_hit"`
	ScheduleKey  string  `json:"schedule_key,omitempty"`
	QueuedMS     float64 `json:"queued_ms"`
	RunMS        float64 `json:"run_ms"`
	ResultLen    int     `json:"result_len,omitempty"`
	ResultSHA256 string  `json:"result_sha256,omitempty"`
	// Stack is the recovered goroutine stack of a job that panicked (state
	// failed); empty otherwise.
	Stack string `json:"stack,omitempty"`
	// CheckpointSweep is the last sweep persisted to disk for this job (0
	// when checkpointing is off or nothing was written yet).
	CheckpointSweep int `json:"checkpoint_sweep,omitempty"`
	// Resumed marks a job reconstructed from a checkpoint at daemon start.
	Resumed bool `json:"resumed,omitempty"`
	// TunedFrom is the BENCH cell ID that backed an auto-tuned job's
	// strategy ("heuristic" when the tuner fell back); empty for jobs that
	// chose their own strategy.
	TunedFrom string `json:"tuned_from,omitempty"`
	// Result is the final reduction/state vector: x for mvm, the node state
	// q for euler, positions for moldyn, the reduction array for raw jobs.
	Result []float64 `json:"result,omitempty"`
}

// Job is one submitted reduction with its lifecycle state. All mutable
// fields are guarded by mu; Done is closed exactly once on completion.
type Job struct {
	ID   string
	Spec JobSpec

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     State
	errMsg    string
	stack     []byte // recovered panic stack, failed jobs only
	cacheHit  bool
	key       string
	tuned     string // BENCH cell ID behind an auto-tuned strategy
	result    []float64
	resultSum string
	ckSweep   int  // last checkpointed sweep
	resumed   bool // reconstructed from a checkpoint at daemon start
	resumeAt  int  // sweeps already completed before this run
	preempted bool // cancelled by shutdown, not by the user: keep the checkpoint
	seed      []float64
	created   time.Time
	started   time.Time
	finished  time.Time
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation. A queued job is marked cancelled when a
// worker dequeues it; a running job stops at its next phase boundary.
func (j *Job) Cancel() { j.cancel() }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the job for the wire; includeResult controls whether the
// (possibly large) result vector is attached.
func (j *Job) Status(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.ID,
		State:           j.state,
		Error:           j.errMsg,
		CacheHit:        j.cacheHit,
		ScheduleKey:     j.key,
		ResultLen:       len(j.result),
		ResultSHA256:    j.resultSum,
		Stack:           string(j.stack),
		CheckpointSweep: j.ckSweep,
		Resumed:         j.resumed,
		TunedFrom:       j.tuned,
	}
	if !j.started.IsZero() {
		st.QueuedMS = float64(j.started.Sub(j.created)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if includeResult && j.state == StateDone {
		st.Result = j.result
	}
	return st
}
