package service

import (
	"sort"
	"sync"
	"time"
)

// latWindow is the number of recent job latencies retained for the
// percentile estimates — a fixed ring so /metrics stays O(1) memory under
// any traffic volume.
const latWindow = 512

// metrics aggregates service counters. State gauges are maintained on
// transitions (submit, start, finish), latencies in a ring of the last
// latWindow completed jobs.
type metrics struct {
	mu          sync.Mutex
	submitted   int64
	shed        int64
	byState     map[State]int64
	workersBusy int64
	lat         [latWindow]float64 // total latency (submit -> finish), ms
	latN        int                // total recorded (ring occupancy = min(latN, latWindow))
}

func newMetrics() *metrics {
	return &metrics{byState: make(map[State]int64)}
}

func (m *metrics) submittedJob() {
	m.mu.Lock()
	m.submitted++
	m.byState[StateQueued]++
	m.mu.Unlock()
}

func (m *metrics) shedJob() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *metrics) startJob() {
	m.mu.Lock()
	m.byState[StateQueued]--
	m.byState[StateRunning]++
	m.workersBusy++
	m.mu.Unlock()
}

// finishJob moves a job from `from` to its terminal state and records its
// total latency.
func (m *metrics) finishJob(from, to State, total time.Duration) {
	m.mu.Lock()
	m.byState[from]--
	if from == StateRunning {
		m.workersBusy--
	}
	m.byState[to]++
	m.lat[m.latN%latWindow] = float64(total) / float64(time.Millisecond)
	m.latN++
	m.mu.Unlock()
}

// LatencySummary reports percentile estimates over the recent window.
type LatencySummary struct {
	Count int64   `json:"count"` // jobs completed since start
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
}

// Snapshot is the /metrics payload: expvar-style JSON counters.
type Snapshot struct {
	UptimeSec float64          `json:"uptime_sec"`
	Jobs      map[string]int64 `json:"jobs"` // by state, plus submitted/shed totals
	Cache     CacheStats       `json:"cache"`
	// CacheHitsTotal / CacheMissesTotal mirror Cache.Hits / Cache.Misses at
	// the top level so flat scrapers (expvar consumers, the sweep harness's
	// delta accounting) read the cumulative schedule-cache traffic without
	// descending into the nested block.
	CacheHitsTotal   int64   `json:"cache_hits_total"`
	CacheMissesTotal int64   `json:"cache_misses_total"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	QueueDepth       int     `json:"queue_depth"`
	// QueuePeak is the admission queue's high-water mark since start;
	// QueueEnqueued counts every submission the queue accepted. Together
	// with Jobs["shed"] they describe how close the pool runs to capacity.
	QueuePeak     int            `json:"queue_peak"`
	QueueEnqueued int64          `json:"queue_enqueued"`
	Workers       int            `json:"workers"`
	WorkersBusy   int64          `json:"workers_busy"`
	Latency       LatencySummary `json:"latency"`
	// Sessions is the streaming-session store: resident sessions, deltas
	// applied, and the incremental-vs-full re-inspection split.
	Sessions SessionMetrics `json:"sessions"`
}

// snapshot assembles the jobs map and latency percentiles.
func (m *metrics) snapshot() (jobs map[string]int64, busy int64, lat LatencySummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs = map[string]int64{
		"submitted": m.submitted,
		"shed":      m.shed,
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		jobs[string(st)] = m.byState[st]
	}
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	lat.Count = int64(m.latN)
	if n > 0 {
		window := make([]float64, n)
		copy(window, m.lat[:n])
		sort.Float64s(window)
		lat.P50MS = percentile(window, 0.50)
		lat.P95MS = percentile(window, 0.95)
	}
	return jobs, m.workersBusy, lat
}

// percentile reads the q-quantile from a sorted sample (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
