package service

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randomDelta builds a canonical delta: a strictly increasing changed list
// drawn from [0, iters) with numRef value rows in [0, elems).
func randomDelta(rng *rand.Rand, numRef, count, iters, elems int) *Delta {
	perm := rng.Perm(iters)[:count]
	changed := make([]int32, count)
	for i, it := range perm {
		changed[i] = int32(it)
	}
	for i := 1; i < len(changed); i++ {
		for j := i; j > 0 && changed[j] < changed[j-1]; j-- {
			changed[j], changed[j-1] = changed[j-1], changed[j]
		}
	}
	d := &Delta{Changed: changed, Values: make([][]int32, numRef)}
	for r := range d.Values {
		d.Values[r] = make([]int32, count)
		for j := range d.Values[r] {
			d.Values[r][j] = int32(rng.Intn(elems))
		}
	}
	return d
}

func TestDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []*Delta{
		{Changed: []int32{}, Values: [][]int32{{}}},
		{Changed: []int32{0}, Values: [][]int32{{5}}},
		{Changed: []int32{0, 1, 2}, Values: [][]int32{{5, 6, 7}, {1, 2, 3}}},
		{Changed: []int32{3, 17, 1000, 1 << 20}, Values: [][]int32{{0, 0, 0, 0}}},
		randomDelta(rng, 1, 40, 4096, 512),
		randomDelta(rng, 3, 200, 32768, 4096),
		randomDelta(rng, 16, 7, 100, 10),
	}
	for i, d := range cases {
		b, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeDelta(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got.Changed, d.Changed) {
			t.Fatalf("case %d: changed %v != %v", i, got.Changed, d.Changed)
		}
		for r := range d.Values {
			if !reflect.DeepEqual(got.Values[r], d.Values[r]) {
				t.Fatalf("case %d ref %d: values differ", i, r)
			}
		}
		// A successful decode must re-encode byte-identically: the wire
		// form is canonical, so a frame is its own normal form.
		b2, err := EncodeDelta(got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("case %d: re-encoding differs", i)
		}
	}
}

// TestDeltaRejectsCorruption flips every byte of a valid frame, truncates
// it at every length, and appends trailing bytes: the decoder must reject
// every such mutation (the FNV trailer covers the whole body, so no
// single-byte flip can slip through).
func TestDeltaRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randomDelta(rng, 2, 25, 1000, 100)
	b, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xFF
		if _, err := DecodeDelta(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(b))
		}
	}
	for n := 0; n < len(b); n++ {
		if _, err := DecodeDelta(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(b))
		}
	}
	if _, err := DecodeDelta(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

func TestDeltaRejectsMalformed(t *testing.T) {
	bad := []*Delta{
		{Changed: []int32{5, 5}, Values: [][]int32{{1, 2}}},  // duplicate
		{Changed: []int32{5, 3}, Values: [][]int32{{1, 2}}},  // unsorted
		{Changed: []int32{-1, 3}, Values: [][]int32{{1, 2}}}, // negative
		{Changed: []int32{1, 2}, Values: nil},                // no rows
		{Changed: []int32{1, 2}, Values: [][]int32{{1}}},     // short row
		{Changed: []int32{1}, Values: [][]int32{{-4}}},       // negative value
	}
	for i, d := range bad {
		if _, err := EncodeDelta(d); err == nil {
			t.Fatalf("case %d: malformed delta encoded", i)
		}
	}
	frames := [][]byte{
		nil,
		[]byte("IRDB"),
		[]byte("XXXX\x01aaaaaaaaaaaa"),
		[]byte("IRDB\x02aaaaaaaaaaaa"), // unknown version
	}
	for i, f := range frames {
		if _, err := DecodeDelta(f); err == nil {
			t.Fatalf("frame %d: malformed frame decoded", i)
		}
	}
	if _, err := DecodeDelta(make([]byte, maxDeltaBody+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
