package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxJobBody bounds a job submission (raw indirection arrays can be large,
// but not unbounded).
const maxJobBody = 256 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; ?wait=1 blocks, 200)
//	GET    /v1/jobs/{id}        job status + result (?result=0 to omit)
//	POST   /v1/jobs/{id}/cancel request cancellation
//	DELETE /v1/jobs/{id}        same as cancel
//	GET    /healthz             liveness
//	GET    /metrics             expvar-style JSON counters
//
// A full admission queue answers 429 with Retry-After, the explicit
// load-shedding contract.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status(true))
		case <-r.Context().Done():
			// The caller went away; the job keeps running and remains
			// queryable by id.
			writeJSON(w, http.StatusAccepted, j.Status(false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	includeResult := r.URL.Query().Get("result") != "0"
	writeJSON(w, http.StatusOK, j.Status(includeResult))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status(false))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}
