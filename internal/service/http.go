package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"irred/internal/obs"
)

// maxJobBody bounds a job submission (raw indirection arrays can be large,
// but not unbounded).
const maxJobBody = 256 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; ?wait=1 blocks, 200;
//	                            ?result=0 omits the result vector)
//	GET    /v1/jobs/{id}        job status + result (?result=0 to omit)
//	POST   /v1/jobs/{id}/cancel request cancellation
//	DELETE /v1/jobs/{id}        same as cancel
//	POST   /v1/session          open a streaming session (201 + base result)
//	GET    /v1/session/{id}     session status (?result=1 attaches the vector)
//	POST   /v1/session/{id}/delta  apply a sparse indirection delta (200;
//	                            binary IRDB frame for application/octet-stream
//	                            bodies, JSON otherwise; 409 while another
//	                            delta is in flight, 410 once the session is
//	                            gone)
//	DELETE /v1/session/{id}     close a session
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining or closed)
//	GET    /metrics             expvar-style JSON counters
//	GET    /debug/trace         phase-level span dump + aggregate tables
//
// A full admission queue answers 429 with Retry-After, the explicit
// load-shedding contract.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/session", s.handleSessionOpen)
	mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/session/{id}/delta", s.handleSessionDelta)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	return mux
}

// TraceHandler returns just the /debug/trace endpoint, so cmd/irredd can
// also mount it on a separate debug listener next to pprof and expvar.
func (s *Service) TraceHandler() http.Handler {
	return http.HandlerFunc(s.handleTrace)
}

// TraceDump is the /debug/trace payload: the retained span window plus the
// aggregate tables derived from it. ByPhase is the per-phase table the
// paper's overlap argument is read from: compute vs copy vs wait, phase by
// phase.
type TraceDump struct {
	Enabled       bool       `json:"enabled"`
	TotalRecorded uint64     `json:"total_recorded"`
	Dropped       uint64     `json:"dropped"` // overwritten by ring wrap
	Aggregate     []obs.Agg  `json:"aggregate"`
	ByPhase       []obs.Agg  `json:"by_phase"`
	Spans         []obs.Span `json:"spans,omitempty"`
}

// handleTrace serves the span dump. Query parameters:
//
//	spans=0        omit the raw span list (aggregates only)
//	n=<max>        cap the raw span list to the newest n
//	format=table   render the aggregate tables as text instead of JSON
//	reset=1        clear the ring after snapshotting
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		writeJSON(w, http.StatusOK, TraceDump{Enabled: false})
		return
	}
	spans, total := s.trace.Snapshot()
	if r.URL.Query().Get("reset") == "1" {
		s.trace.Reset()
	}
	dump := TraceDump{
		Enabled:       true,
		TotalRecorded: total,
		Dropped:       total - uint64(len(spans)),
		Aggregate:     obs.Aggregate(spans, false),
		ByPhase:       obs.Aggregate(spans, true),
		Spans:         spans,
	}
	if r.URL.Query().Get("spans") == "0" {
		dump.Spans = nil
	} else if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(dump.Spans) {
			dump.Spans = dump.Spans[len(dump.Spans)-n:]
		}
	}
	if r.URL.Query().Get("format") == "table" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("== aggregate ==\n" + obs.Table(dump.Aggregate) +
			"\n== by phase ==\n" + obs.Table(dump.ByPhase)))
		return
	}
	writeJSON(w, http.StatusOK, dump)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		// A closing (draining) node is a transient condition in a fleet:
		// tell the client when to come back, exactly like the 429 path.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		includeResult := r.URL.Query().Get("result") != "0"
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status(includeResult))
		case <-r.Context().Done():
			// The caller went away; the job keeps running and remains
			// queryable by id.
			writeJSON(w, http.StatusAccepted, j.Status(false))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	includeResult := r.URL.Query().Get("result") != "0"
	writeJSON(w, http.StatusOK, j.Status(includeResult))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status(false))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}
