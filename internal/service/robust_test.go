package service

import (
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"irred/internal/fault"
)

// robustSpec builds a deterministic raw reduction spec with integral
// contributions, so recovered/resumed runs can be compared bitwise.
func robustSpec(seed int64, steps int) JobSpec {
	rng := rand.New(rand.NewSource(seed))
	iters, elems := 160, 48
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	w := make([]float64, iters)
	for i := range w {
		w[i] = float64(rng.Intn(9) + 1)
	}
	return JobSpec{
		NumIters: iters, NumElems: elems, Ind: ind,
		Contrib: &ContribSpec{Kind: "weights", Weights: w},
		P:       3, K: 2, Steps: steps,
	}
}

// TestCheckpointRoundTrip pins the IRCJ file format: write, read back,
// verify every field survives bit-exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := robustSpec(1, 6)
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	ck := &jobCheckpoint{Spec: spec, Sweep: 4, X: want}
	path := ckPath(dir, "j000042")
	if err := writeJobCheckpoint(path, ck, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readJobCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 4 || len(got.X) != len(want) {
		t.Fatalf("read back sweep=%d len=%d", got.Sweep, len(got.X))
	}
	for i := range want {
		if got.X[i] != want[i] {
			t.Fatalf("X[%d] = %v, want %v", i, got.X[i], want[i])
		}
	}
	if got.Spec.NumIters != spec.NumIters || got.Spec.Steps != spec.Steps {
		t.Fatalf("spec did not survive: %+v", got.Spec)
	}
}

// TestCheckpointRejectsCorruption: any flipped byte fails the checksum and
// the scanner deletes the file rather than resuming from it.
func TestCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	spec := robustSpec(2, 4)
	x, _ := spec.SequentialRaw()
	path := ckPath(dir, "j000001")
	if err := writeJobCheckpoint(path, &jobCheckpoint{Spec: spec, Sweep: 2, X: x}, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJobCheckpoint(path); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
	if cks := scanJobCheckpoints(dir); len(cks) != 0 {
		t.Fatalf("scanner resumed %d corrupt checkpoints", len(cks))
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("scanner left the corrupt file on disk")
	}
}

// TestCheckpointWriteFaultInjected: an injected disk failure loses the
// resume point but not the write path's atomicity (no partial file).
func TestCheckpointWriteFaultInjected(t *testing.T) {
	dir := t.TempDir()
	spec := robustSpec(3, 4)
	x, _ := spec.SequentialRaw()
	inj := fault.New(fault.Spec{Seed: 1, DiskRate: 1})
	path := ckPath(dir, "j000001")
	if err := writeJobCheckpoint(path, &jobCheckpoint{Spec: spec, Sweep: 2, X: x}, inj); err == nil {
		t.Fatal("rate-1 disk injector let the checkpoint through")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed write left a file behind")
	}
	if c := inj.Counters(); c.DiskFails != 1 {
		t.Fatalf("counters %+v, want 1 disk failure", c)
	}
}

// TestServiceResumesCheckpointedJob is the restart contract end to end: a
// multi-sweep job checkpoints mid-run; a second service over the same
// directory picks the checkpoint up, reruns only the remaining sweeps, and
// produces the bitwise-identical result.
func TestServiceResumesCheckpointedJob(t *testing.T) {
	dir := t.TempDir()
	spec := robustSpec(4, 8)
	spec.CheckpointEvery = 2
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}

	// First process: run to completion so a checkpoint file certainly
	// exists mid-run, then craft the "crashed mid-run" state by writing the
	// sweep-4 checkpoint back (a TERM'd daemon leaves exactly this behind).
	s1, err := New(Options{Workers: 1, CacheDir: dir, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitJob(t, j1)
	if st1.State != StateDone {
		t.Fatalf("first run: %+v", st1)
	}
	s1.Close()

	half := spec
	half.Steps = 4
	halfX, err := half.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	jobsDir := s1.jobsDir
	if err := writeJobCheckpoint(ckPath(jobsDir, "j009999"), &jobCheckpoint{Spec: spec, Sweep: 4, X: halfX}, nil); err != nil {
		t.Fatal(err)
	}

	// Second process: must resume the stored job automatically.
	s2, err := New(Options{Workers: 1, CacheDir: dir, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.Job("j000001")
	if !ok {
		t.Fatal("restart did not re-admit the checkpointed job")
	}
	st2 := waitJob(t, j2)
	if st2.State != StateDone {
		t.Fatalf("resumed run: %+v", st2)
	}
	if !st2.Resumed {
		t.Fatal("resumed job not marked Resumed")
	}
	if len(st2.Result) != len(want) {
		t.Fatalf("result len %d, want %d", len(st2.Result), len(want))
	}
	for i := range want {
		if st2.Result[i] != want[i] {
			t.Fatalf("resumed result[%d] = %v, want %v (diverged)", i, st2.Result[i], want[i])
		}
	}
	// The old checkpoint file is consumed and the finished job leaves none.
	if cks := scanJobCheckpoints(jobsDir); len(cks) != 0 {
		t.Fatalf("%d checkpoint files survive a completed resume", len(cks))
	}
}

// TestShutdownPreemptionKeepsCheckpoint is the graceful-TERM contract: a
// running checkpointed job preempted by Close leaves its checkpoint on
// disk (unlike user cancellation, which deletes it), and the next service
// over the same directory resumes it to the bitwise-exact result.
func TestShutdownPreemptionKeepsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := robustSpec(9, 5000)
	spec.CheckpointEvery = 1
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}

	s1, err := New(Options{Workers: 1, CacheDir: dir, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Preempt mid-run, after at least a few checkpoints have landed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := j1.Status(false)
		if st.CheckpointSweep >= 3 {
			break
		}
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			t.Fatalf("job reached %s before preemption", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint observed before the deadline")
		}
		time.Sleep(200 * time.Microsecond)
	}
	s1.Close()
	if st := j1.Status(false); st.State != StateCancelled {
		t.Fatalf("preempted job state %s, want cancelled", st.State)
	}
	cks := scanJobCheckpoints(s1.jobsDir)
	if len(cks) != 1 {
		t.Fatalf("preemption left %d checkpoint files, want 1", len(cks))
	}

	s2, err := New(Options{Workers: 1, CacheDir: dir, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.Job("j000001")
	if !ok {
		t.Fatal("restart did not re-admit the preempted job")
	}
	st2 := waitJob(t, j2)
	if st2.State != StateDone || !st2.Resumed {
		t.Fatalf("resumed run: %+v", st2)
	}
	for i := range want {
		if st2.Result[i] != want[i] {
			t.Fatalf("resumed result[%d] = %v, want %v (diverged)", i, st2.Result[i], want[i])
		}
	}
	if cks := scanJobCheckpoints(s1.jobsDir); len(cks) != 0 {
		t.Fatalf("%d checkpoint files survive a completed resume", len(cks))
	}
}

// TestChaosRequiresOptIn: a chaos-carrying spec is rejected unless the
// service was started with AllowChaos.
func TestChaosRequiresOptIn(t *testing.T) {
	s, err := New(Options{Workers: 1, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := robustSpec(5, 2)
	spec.Chaos = &fault.Spec{Seed: 1, DropRate: 0.1}
	if _, err := s.Submit(spec); !errors.Is(err, ErrChaosDisabled) {
		t.Fatalf("err = %v, want ErrChaosDisabled", err)
	}
}

// TestChaosJobRecoversOnDistributedEngine: payload faults against the
// hardened engine recover and the job's result is bitwise sequential.
func TestChaosJobRecoversOnDistributedEngine(t *testing.T) {
	s, err := New(Options{Workers: 1, TraceSpans: -1, AllowChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := robustSpec(6, 3)
	spec.Engine = "distributed"
	spec.Chaos = &fault.Spec{Seed: 3, DropRate: 0.05, CorruptRate: 0.05}
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("chaos job: %+v", st)
	}
	for i := range want {
		if st.Result[i] != want[i] {
			t.Fatalf("chaos result[%d] = %v, want %v", i, st.Result[i], want[i])
		}
	}
}

// TestChaosKernelPanicFailsJobWithStack: an injected kernel panic on the
// native engine fails exactly that job, attaches the recovered stack to
// its status, and leaves the worker serving later jobs.
func TestChaosKernelPanicFailsJobWithStack(t *testing.T) {
	s, err := New(Options{Workers: 1, TraceSpans: -1, AllowChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	spec := robustSpec(7, 2)
	spec.Chaos = &fault.Spec{
		Targets: []fault.Target{{Class: fault.Panic, Proc: 0, Phase: -1, Sweep: -1, Iter: -1}},
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed (%+v)", st.State, st)
	}
	if !strings.Contains(st.Error, "panic") {
		t.Fatalf("error %q does not mention the panic", st.Error)
	}
	if st.Stack == "" {
		t.Fatal("failed job carries no stack")
	}

	// The worker survives: a clean job still runs.
	ok, err := s.Submit(robustSpec(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, ok); st.State != StateDone {
		t.Fatalf("post-panic job: %+v", st)
	}
}

// TestReadyzFlipsOnDrain: Ready is true for a live service, false after
// BeginDrain and after Close.
func TestReadyzFlipsOnDrain(t *testing.T) {
	s, err := New(Options{Workers: 1, TraceSpans: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("fresh service not ready")
	}
	s.BeginDrain()
	if s.Ready() {
		t.Fatal("draining service still ready")
	}
	s.Close()
	if s.Ready() {
		t.Fatal("closed service still ready")
	}
}
