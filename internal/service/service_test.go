package service

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"irred/internal/kernels"
	"irred/internal/sparse"
)

// rawSpec builds a raw reduction job with integral weights: contributions
// are exactly representable, so floating-point addition is exact and the
// parallel result must equal the sequential reference bit for bit,
// whatever the summation order.
func rawSpec(seed int64, p, k, iters, elems, steps int) JobSpec {
	rng := rand.New(rand.NewSource(seed))
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	w := make([]float64, iters)
	for i := range w {
		w[i] = float64(1 + rng.Intn(8))
	}
	return JobSpec{
		NumIters: iters,
		NumElems: elems,
		Ind:      ind,
		Contrib:  &ContribSpec{Kind: "weights", Weights: w},
		P:        p, K: k, Steps: steps,
	}
}

func newTestService(t *testing.T, opt Options) *Service {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitJob blocks until the job is terminal, with a hard timeout so a
// broken service fails fast instead of hanging the suite.
func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in %s", j.ID, j.State())
	}
	return j.Status(true)
}

func TestRawJobMatchesSequentialBitwise(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	spec := rawSpec(1, 4, 2, 3000, 257, 3)
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	if len(st.Result) != len(want) {
		t.Fatalf("result len %d, want %d", len(st.Result), len(want))
	}
	for i := range want {
		if st.Result[i] != want[i] {
			t.Fatalf("element %d: got %v, want %v (bitwise)", i, st.Result[i], want[i])
		}
	}
	if st.ResultSHA256 != HashResult(want) {
		t.Fatal("result hash does not match sequential reference")
	}
}

func TestNamedKernelMatchesSequential(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	j, err := s.Submit(JobSpec{Kernel: "mvm", Dataset: "S", Seed: 1, P: 4, K: 2, Dist: "block", Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	mv := kernels.NewMVM(sparse.Generate(sparse.ClassS, 1))
	want := mv.RunSequential(3)
	if len(st.Result) != len(want) {
		t.Fatalf("result len %d, want %d", len(st.Result), len(want))
	}
	for i := range want {
		d := st.Result[i] - want[i]
		if d < 0 {
			d = -d
		}
		scale := 1.0
		if want[i] < 0 {
			scale = 1 - want[i]
		} else {
			scale = 1 + want[i]
		}
		if d/scale > 1e-10 {
			t.Fatalf("element %d: got %v, want %v", i, st.Result[i], want[i])
		}
	}
}

func TestScheduleCacheReuseAcrossJobs(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	spec := rawSpec(2, 4, 2, 1000, 101, 2)
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitJob(t, first)
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("first job: state %s cacheHit %v", st1.State, st1.CacheHit)
	}
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, second)
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("second job: state %s cacheHit %v, want a schedule cache hit", st2.State, st2.CacheHit)
	}
	if st1.ScheduleKey == "" || st1.ScheduleKey != st2.ScheduleKey {
		t.Fatalf("schedule keys differ: %q vs %q", st1.ScheduleKey, st2.ScheduleKey)
	}
	if st1.ResultSHA256 != st2.ResultSHA256 {
		t.Fatal("same job produced different results")
	}
	cs := s.Cache().Stats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss + 1 hit", cs)
	}
	// A different strategy over the same arrays is a different key.
	spec.K = 1
	third, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, third); st.CacheHit {
		t.Fatal("different strategy must not hit the cache")
	}
}

// longSpec is a job that runs for many seconds if not cancelled: a small
// sweep repeated a million times, so cancellation has thousands of phase
// boundaries per second to land on.
func longSpec() JobSpec {
	sp := rawSpec(3, 4, 2, 500, 64, 1)
	sp.Steps = 1_000_000
	return sp
}

func TestCancelRunningJob(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	j, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up, then cancel mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel reported unknown job")
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not stop; worker still held")
	}
	if st := j.Status(false); st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	// The worker must be free again: a quick job completes.
	quick, err := s.Submit(rawSpec(4, 2, 1, 100, 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, quick); st.State != StateDone {
		t.Fatalf("post-cancel job: %s (%s) — worker not released", st.State, st.Error)
	}
}

func TestDeadlineExpiryCancelsJob(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	sp := longSpec()
	sp.TimeoutMS = 50
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("deadline-bound job did not stop")
	}
	if st := j.Status(false); st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled on deadline", st.State)
	}
}

func TestQueueSheddingUnderLoad(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueLen: 1})
	running, err := s.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for running.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(longSpec())
	if err != nil {
		t.Fatalf("queue slot should have accepted the second job: %v", err)
	}
	if _, err := s.Submit(longSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}
	snap := s.Metrics()
	if snap.Jobs["shed"] != 1 {
		t.Fatalf("shed = %d, want 1", snap.Jobs["shed"])
	}
	if snap.QueueDepth != 1 {
		t.Fatalf("queue depth = %d, want 1", snap.QueueDepth)
	}
	running.Cancel()
	queued.Cancel()
	<-running.Done()
	<-queued.Done()
	// The queued job was cancelled before a worker ran it.
	if st := queued.Status(false); st.State != StateCancelled {
		t.Fatalf("queued job state = %s", st.State)
	}
}

func TestInvalidSpecsRejected(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	bad := []JobSpec{
		{Kernel: "mvm", Dataset: "Z", P: 2, K: 1},
		{Kernel: "nope", Dataset: "S", P: 2, K: 1},
		{Kernel: "mvm", Dataset: "S", P: 0, K: 1},
		{Kernel: "mvm", Dataset: "S", P: 2, K: 0},
		{Kernel: "mvm", Dataset: "S", P: 2, K: 1, Dist: "diagonal"},
		{NumIters: 4, NumElems: 8, P: 2, K: 1},                                                                    // raw without ind
		{NumIters: 4, NumElems: 8, Ind: [][]int32{{0, 1, 2, 9}}, Contrib: &ContribSpec{Kind: "ones"}, P: 2, K: 1}, // out of range
		{NumIters: 2, NumElems: 8, Ind: [][]int32{{0, 1}}, Contrib: &ContribSpec{Kind: "pair", Weights: []float64{1, 1}}, P: 2, K: 1}, // pair needs 2 refs
	}
	for i, sp := range bad {
		if _, err := s.Submit(sp); err == nil {
			t.Errorf("spec %d accepted: %+v", i, sp)
		}
	}
}

func TestMetricsLatencyAndStates(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	for i := 0; i < 5; i++ {
		j, err := s.Submit(rawSpec(int64(10+i), 2, 2, 500, 77, 2))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
	}
	snap := s.Metrics()
	if snap.Jobs["done"] != 5 || snap.Jobs["submitted"] != 5 {
		t.Fatalf("jobs = %+v", snap.Jobs)
	}
	if snap.Jobs["running"] != 0 || snap.Jobs["queued"] != 0 {
		t.Fatalf("gauges not drained: %+v", snap.Jobs)
	}
	if snap.Latency.Count != 5 || snap.Latency.P95MS < snap.Latency.P50MS {
		t.Fatalf("latency = %+v", snap.Latency)
	}
	// 5 jobs with distinct seeds → 5 distinct keys → all misses.
	if snap.CacheHitRatio != 0 || snap.Cache.Misses != 5 {
		t.Fatalf("cache = %+v ratio %v", snap.Cache, snap.CacheHitRatio)
	}
}

func TestFinishedJobPruning(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxFinished: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(rawSpec(int64(20+i), 2, 1, 50, 16, 1))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		ids = append(ids, j.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest finished job not pruned")
	}
	if _, ok := s.Job(ids[3]); !ok {
		t.Fatal("newest finished job pruned")
	}
}
