package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCheckpointGCSkipsConcurrentWriter: startup GC deletes corrupt
// checkpoint files, but a file whose mtime is at or after the scan start
// may be a concurrent writer mid-write and must survive the scan. (The
// regression: GC raced a peer staging a checkpoint into a shared jobs
// directory and deleted the half-written frame.)
func TestCheckpointGCSkipsConcurrentWriter(t *testing.T) {
	dir := t.TempDir()

	// A genuinely stale corrupt file: garbage bytes, mtime an hour ago.
	stale := filepath.Join(dir, "j000001"+ckFileExt)
	if err := os.WriteFile(stale, []byte("not an IRCJ frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	// A concurrent writer's file: same garbage (it is mid-write), but its
	// mtime is after the scan starts.
	fresh := filepath.Join(dir, "j000002"+ckFileExt)
	if err := os.WriteFile(fresh, []byte("half-written IRCJ frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(fresh, future, future); err != nil {
		t.Fatal(err)
	}

	// A valid checkpoint rides along to prove the scan still resumes work.
	spec := JobSpec{
		NumIters: 8, NumElems: 4,
		Ind:     [][]int32{{0, 1, 2, 3, 0, 1, 2, 3}},
		Contrib: &ContribSpec{Kind: "ones"},
		P:       2, K: 1, Steps: 4,
	}
	good := filepath.Join(dir, "j000003"+ckFileExt)
	if err := writeJobCheckpoint(good, &jobCheckpoint{Spec: spec, Sweep: 2, X: make([]float64, 4)}, nil); err != nil {
		t.Fatal(err)
	}

	got := scanJobCheckpoints(dir)
	if len(got) != 1 {
		t.Fatalf("scan returned %d checkpoints, want 1 (the valid one)", len(got))
	}
	if _, ok := got["j000003"]; !ok {
		t.Fatalf("valid checkpoint missing from scan: %v", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale corrupt checkpoint survived GC")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("concurrent writer's file was garbage-collected: %v", err)
	}

	// Once the writer finishes (mtime now in the past), the next scan is
	// free to judge — and delete — the file if it is still corrupt.
	if err := os.Chtimes(fresh, old, old); err != nil {
		t.Fatal(err)
	}
	scanJobCheckpoints(dir)
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatal("settled corrupt checkpoint survived the second scan")
	}
}
