// End-to-end tests over the real HTTP stack: httptest server, JSON wire
// format, and the Go client — the same path cmd/irredd serves.
package service_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"irred/internal/service"
	"irred/internal/service/client"
)

func startServer(t *testing.T, opt service.Options) (*service.Service, *client.Client) {
	t.Helper()
	svc, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, client.New(ts.URL)
}

func httpRawSpec(seed int64, p, k, iters, elems, steps int) service.JobSpec {
	rng := rand.New(rand.NewSource(seed))
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	w := make([]float64, iters)
	for i := range w {
		w[i] = float64(1 + rng.Intn(8))
	}
	return service.JobSpec{
		NumIters: iters,
		NumElems: elems,
		Ind:      ind,
		Contrib:  &service.ContribSpec{Kind: "weights", Weights: w},
		P:        p, K: k, Steps: steps,
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 2})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := httpRawSpec(31, 4, 2, 2000, 129, 2)
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}

	// Async submit + poll.
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submit returned no job id")
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateDone {
		t.Fatalf("job %s: %s", fin.State, fin.Error)
	}
	if len(fin.Result) != len(want) {
		t.Fatalf("result len %d, want %d", len(fin.Result), len(want))
	}
	for i := range want {
		if fin.Result[i] != want[i] {
			t.Fatalf("element %d: got %v, want %v (bitwise)", i, fin.Result[i], want[i])
		}
	}
	if fin.ResultSHA256 != service.HashResult(want) {
		t.Fatal("result hash mismatch over the wire")
	}

	// Synchronous submit of the same spec: must hit the schedule cache and
	// produce the identical result.
	again, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != service.StateDone {
		t.Fatalf("resubmit: %s: %s", again.State, again.Error)
	}
	if !again.CacheHit {
		t.Fatal("resubmitting identical arrays + strategy must hit the schedule cache")
	}
	if again.ResultSHA256 != fin.ResultSHA256 {
		t.Fatal("cache-hit run diverged from cold run")
	}

	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Hits < 1 || snap.Cache.Misses != 1 {
		t.Fatalf("metrics cache = %+v, want ≥1 hit and exactly 1 miss", snap.Cache)
	}
	if snap.Jobs["done"] != 2 {
		t.Fatalf("metrics jobs = %+v", snap.Jobs)
	}
	if snap.Latency.Count != 2 {
		t.Fatalf("latency = %+v", snap.Latency)
	}
}

// TestHTTPRestartPersistence is the acceptance criterion: with -cache-dir
// persistence, a restarted daemon answers the same submission with a
// schedule cache hit — no second LightInspector run.
func TestHTTPRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	spec := httpRawSpec(32, 4, 2, 1500, 97, 1)

	var coldSum string
	{
		_, c := startServer(t, service.Options{Workers: 1, CacheDir: dir})
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateDone || st.CacheHit {
			t.Fatalf("cold run: state %s cacheHit %v", st.State, st.CacheHit)
		}
		coldSum = st.ResultSHA256
	}

	// "Restart": a brand-new service over the same cache directory.
	svc, c := startServer(t, service.Options{Workers: 1, CacheDir: dir})
	if st := svc.Cache().Stats(); st.Entries != 1 {
		t.Fatalf("restarted cache holds %d entries, want 1 warmed from disk", st.Entries)
	}
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("warm run: %s: %s", st.State, st.Error)
	}
	if !st.CacheHit {
		t.Fatal("restarted daemon must serve the schedule from the persisted cache")
	}
	if st.ResultSHA256 != coldSum {
		t.Fatal("post-restart result diverged")
	}
	if cs := svc.Cache().Stats(); cs.Misses != 0 {
		t.Fatalf("restarted cache ran the inspector anyway: %+v", cs)
	}
}

func TestHTTPCancel(t *testing.T) {
	svc, c := startServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	long := httpRawSpec(33, 4, 2, 500, 64, 1)
	long.Steps = 1_000_000
	st, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := svc.Job(st.ID)
	if !ok {
		t.Fatal("job not registered")
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != service.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != service.StateCancelled {
		t.Fatalf("state = %s, want cancelled", fin.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1, QueueLen: 1})
	ctx := context.Background()

	// Unknown job id → 404.
	if _, err := c.Get(ctx, "j999999"); err == nil {
		t.Fatal("expected 404 for unknown job")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 404 {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}

	// Invalid spec → 400.
	if _, err := c.Submit(ctx, service.JobSpec{Kernel: "nope", P: 2, K: 1}); err == nil {
		t.Fatal("expected 400 for invalid spec")
	} else if se, ok := err.(*client.StatusError); !ok || se.Code != 400 {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}

	// Saturate the single worker + single queue slot, then expect a shed.
	long := httpRawSpec(34, 4, 2, 500, 64, 1)
	long.Steps = 1_000_000
	first, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Get(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatalf("queue slot should accept: %v", err)
	}
	_, err = c.Submit(ctx, long)
	if !client.IsShed(err) {
		t.Fatalf("err = %v, want a 429 shed", err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, id, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHTTPDebugTrace submits a job and checks /debug/trace exposes the
// per-phase compute/copy/rotation spans from the run, the table rendering,
// and the reset knob.
func TestHTTPDebugTrace(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1})
	ctx := context.Background()

	if _, err := c.SubmitWait(ctx, httpRawSpec(47, 3, 2, 1500, 97, 2)); err != nil {
		t.Fatal(err)
	}

	dump, err := c.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !dump.Enabled {
		t.Fatal("tracing disabled by default")
	}
	if dump.TotalRecorded == 0 {
		t.Fatal("no spans recorded for a completed job")
	}
	have := map[string]bool{}
	for _, a := range dump.Aggregate {
		have[a.Name] = true
	}
	for _, want := range []string{"compute", "copy", "wait", "inspect", "cache/miss", "job/raw"} {
		if !have[want] {
			t.Fatalf("aggregate table missing %q span (have %v)", want, have)
		}
	}
	// The by-phase table must carry real phase tags for compute spans.
	phased := false
	for _, a := range dump.ByPhase {
		if a.Name == "compute" && a.Phase >= 0 {
			phased = true
		}
	}
	if !phased {
		t.Fatal("no per-phase compute rows in by_phase table")
	}

	// Text rendering.
	resp, err := http.Get(c.Base + "/debug/trace?format=table")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "compute") || !strings.Contains(string(body), "== by phase ==") {
		t.Fatalf("table rendering missing content:\n%s", body)
	}

	// Reset clears the ring.
	resp, err = http.Get(c.Base + "/debug/trace?reset=1&spans=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dump, err = c.Trace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dump.TotalRecorded != 0 {
		t.Fatalf("ring not cleared after reset: %d spans", dump.TotalRecorded)
	}
}

// TestHTTPTraceDisabled checks TraceSpans<0 turns the endpoint into a
// benign "disabled" answer rather than a 404.
func TestHTTPTraceDisabled(t *testing.T) {
	_, c := startServer(t, service.Options{Workers: 1, TraceSpans: -1})
	dump, err := c.Trace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dump.Enabled {
		t.Fatal("tracer should be disabled")
	}
}
