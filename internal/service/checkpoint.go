package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"irred/internal/fault"
)

// Job checkpoint file format: magic "IRCJ" + version byte + varint spec
// JSON length + spec JSON + varint completed-sweep count + varint vector
// length + the vector's little-endian float bits + FNV-1a over everything
// before it. The trailing checksum means a torn write (crash mid-rename is
// impossible — writes go through tmp+rename — but a corrupted disk is not)
// is rejected at read time and the job simply restarts from sweep 0.
const (
	ckFileMagic   = "IRCJ"
	ckFileVersion = 1
	ckFileExt     = ".irc"
	// ckJobsDir is the subdirectory of the service's disk directory that
	// holds job checkpoints (next to the schedule cache files).
	ckJobsDir = "jobs"
)

// jobCheckpoint is the persisted mid-run state of a raw multi-sweep job:
// enough to re-admit the job after a restart and continue from Sweep.
type jobCheckpoint struct {
	Spec  JobSpec
	Sweep int // completed sweeps
	X     []float64
}

func ckPath(dir, id string) string {
	return filepath.Join(dir, id+ckFileExt)
}

// writeJobCheckpoint persists ck atomically (tmp + rename). The fault
// injector, when live, may fail the write — the caller treats that as a
// lost resume point, never as a job failure.
func writeJobCheckpoint(path string, ck *jobCheckpoint, inj *fault.Injector) error {
	if err := inj.DiskWrite(path, ck.Sweep); err != nil {
		return err
	}
	specJSON, err := json.Marshal(ck.Spec)
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("service: checkpoint: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	sum := fnv.New64a()
	bw := bufio.NewWriter(io.MultiWriter(f, sum))
	var vbuf [binary.MaxVarintLen64]byte
	putVarint := func(v int64) error {
		n := binary.PutVarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	if _, err := bw.WriteString(ckFileMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(ckFileVersion); err != nil {
		return err
	}
	if err := putVarint(int64(len(specJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(specJSON); err != nil {
		return err
	}
	if err := putVarint(int64(ck.Sweep)); err != nil {
		return err
	}
	if err := putVarint(int64(len(ck.X))); err != nil {
		return err
	}
	var b [8]byte
	for _, v := range ck.X {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The checksum goes straight to the file: it covers everything flushed
	// through the MultiWriter above.
	binary.LittleEndian.PutUint64(b[:], sum.Sum64())
	if _, err := f.Write(b[:]); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ok = true
	return os.Rename(tmp, path)
}

// readJobCheckpoint loads and verifies one checkpoint file. Any structural
// damage — bad magic, short file, checksum mismatch, spec that no longer
// validates — is an error; the caller discards the file.
func readJobCheckpoint(path string) (*jobCheckpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeJobCheckpoint(raw, path)
}

// decodeJobCheckpoint verifies and decodes IRCJ bytes, wherever they came
// from — a local file or a checkpoint frame replicated from a cluster
// peer. path only labels errors.
func decodeJobCheckpoint(raw []byte, path string) (*jobCheckpoint, error) {
	if len(raw) < len(ckFileMagic)+1+8 {
		return nil, fmt.Errorf("service: checkpoint %s: truncated", path)
	}
	body, tail := raw[:len(raw)-8], raw[len(raw)-8:]
	sum := fnv.New64a()
	sum.Write(body)
	if sum.Sum64() != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("service: checkpoint %s: checksum mismatch", path)
	}
	if string(body[:len(ckFileMagic)]) != ckFileMagic {
		return nil, fmt.Errorf("service: checkpoint %s: bad magic", path)
	}
	body = body[len(ckFileMagic):]
	if body[0] != ckFileVersion {
		return nil, fmt.Errorf("service: checkpoint %s: unsupported version %d", path, body[0])
	}
	br := bufio.NewReader(bytes.NewReader(body[1:]))
	specLen, err := binary.ReadVarint(br)
	if err != nil || specLen < 2 || specLen > 1<<31 {
		return nil, fmt.Errorf("service: checkpoint %s: spec length %d", path, specLen)
	}
	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(br, specJSON); err != nil {
		return nil, err
	}
	ck := &jobCheckpoint{}
	if err := json.Unmarshal(specJSON, &ck.Spec); err != nil {
		return nil, fmt.Errorf("service: checkpoint %s: %w", path, err)
	}
	if err := ck.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: checkpoint %s: stored spec: %w", path, err)
	}
	sweep, err := binary.ReadVarint(br)
	if err != nil || sweep < 1 || int(sweep) > ck.Spec.steps() {
		return nil, fmt.Errorf("service: checkpoint %s: sweep %d of %d", path, sweep, ck.Spec.steps())
	}
	ck.Sweep = int(sweep)
	n, err := binary.ReadVarint(br)
	if err != nil || n < 1 || n > 1<<28 {
		return nil, fmt.Errorf("service: checkpoint %s: vector length %d", path, n)
	}
	ck.X = make([]float64, n)
	var b [8]byte
	for i := range ck.X {
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, err
		}
		ck.X[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}
	return ck, nil
}

// scanJobCheckpoints lists the resumable checkpoints under dir, keyed by
// the job id encoded in the file name. Unreadable or corrupt files are
// deleted — a bad resume point is worth strictly less than a clean
// restart — EXCEPT files whose mtime is at or after the scan start: those
// may be mid-write by a concurrent writer (a cluster peer replicating a
// checkpoint into a shared directory, or a tool staging a resume file),
// and a half-written frame must not be garbage-collected out from under
// it. Such files are skipped this scan and judged by a later one.
func scanJobCheckpoints(dir string) map[string]*jobCheckpoint {
	scanStart := time.Now()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	out := make(map[string]*jobCheckpoint)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckFileExt) {
			continue
		}
		path := filepath.Join(dir, name)
		ck, err := readJobCheckpoint(path)
		if err != nil {
			if fi, serr := os.Stat(path); serr == nil && !fi.ModTime().Before(scanStart) {
				continue // concurrent writer: skip, never delete
			}
			os.Remove(path)
			continue
		}
		out[strings.TrimSuffix(name, ckFileExt)] = ck
	}
	return out
}
