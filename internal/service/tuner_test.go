package service

import (
	"strings"
	"testing"

	"irred/internal/benchfmt"
	"irred/internal/rts"
)

// trajectoryCell builds a clean measured BENCH cell.
func trajectoryCell(kernel, class, engine string, p, k int, dist string, ms float64) benchfmt.Cell {
	return benchfmt.Cell{
		ID:     kernel + "/" + class + "/" + engine + "/p" + string(rune('0'+p)) + "/k" + string(rune('0'+k)) + "/" + dist + "/checked",
		Kernel: kernel, Class: class, Engine: engine,
		P: p, K: k, Dist: dist, Checked: true,
		Wall: benchfmt.Stats{Count: 5, MeanMS: ms, TrimmedMS: ms},
	}
}

// serviceTrajectory measures raw/tiny fastest on the distributed engine
// and mvm/S fastest at native P=2 k=2 cyclic.
func serviceTrajectory() *benchfmt.Summary {
	return &benchfmt.Summary{
		Stamp: benchfmt.Stamp{Schema: benchfmt.Schema, Date: "2026-08-08"},
		Cells: []benchfmt.Cell{
			trajectoryCell("raw", "tiny", "distributed", 2, 1, "cyclic", 0.4),
			trajectoryCell("raw", "tiny", "native", 4, 2, "block", 0.9),
			trajectoryCell("mvm", "S", "native", 2, 2, "cyclic", 1.2),
			trajectoryCell("mvm", "S", "native", 1, 1, "block", 3.0),
		},
	}
}

func serviceTuner() *rts.Tuner {
	return rts.NewTuner(serviceTrajectory(), rts.TunerOptions{
		MaxP: 8, Engines: []string{"native", "distributed"},
	})
}

// An Auto job's strategy comes from the trajectory: the raw job lands on
// the measured-fastest distributed cell, the named kernel on its native
// winner — and both still produce correct results.
func TestAutoJobPicksFromTrajectory(t *testing.T) {
	s := newTestService(t, Options{Workers: 2, Tuner: serviceTuner()})

	raw := rawSpec(3, 0, 0, 800, 97, 2) // 800 iters buckets onto raw/tiny
	raw.Auto = true
	want, err := (&JobSpec{
		NumIters: raw.NumIters, NumElems: raw.NumElems, Ind: raw.Ind,
		Contrib: raw.Contrib, P: 1, K: 1, Steps: raw.Steps,
	}).SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(raw)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("raw auto job: %s: %s", st.State, st.Error)
	}
	if j.Spec.P != 2 || j.Spec.K != 1 || j.Spec.Engine != "distributed" || j.Spec.Dist != "cyclic" {
		t.Fatalf("raw auto strategy = engine %q P=%d k=%d %s", j.Spec.Engine, j.Spec.P, j.Spec.K, j.Spec.Dist)
	}
	if !strings.HasPrefix(st.TunedFrom, "raw/tiny/distributed") {
		t.Fatalf("tuned_from = %q", st.TunedFrom)
	}
	if st.ResultSHA256 != HashResult(want) {
		t.Fatal("auto-tuned raw result does not match the sequential reference")
	}

	named := JobSpec{Kernel: "mvm", Dataset: "s", Seed: 1, Steps: 2, Auto: true}
	nj, err := s.Submit(named)
	if err != nil {
		t.Fatal(err)
	}
	nst := waitJob(t, nj)
	if nst.State != StateDone {
		t.Fatalf("named auto job: %s: %s", nst.State, nst.Error)
	}
	if nj.Spec.P != 2 || nj.Spec.K != 2 || nj.Spec.Dist != "cyclic" || nj.Spec.Engine != "" {
		t.Fatalf("named auto strategy = engine %q P=%d k=%d %s", nj.Spec.Engine, nj.Spec.P, nj.Spec.K, nj.Spec.Dist)
	}
	if !strings.HasPrefix(nst.TunedFrom, "mvm/S/native") {
		t.Fatalf("tuned_from = %q", nst.TunedFrom)
	}

	// The two workloads were tuned to demonstrably different strategies.
	if j.Spec.Engine == nj.Spec.Engine && j.Spec.K == nj.Spec.K {
		t.Fatal("auto picks do not differ across workload classes")
	}
}

// Without a tuner, Auto jobs get the paper's heuristic defaults and a
// "heuristic" provenance marker — never a rejection.
func TestAutoJobHeuristicWithoutTuner(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	spec := rawSpec(4, 0, 0, 500, 64, 1)
	spec.Auto = true
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	if st.TunedFrom != "heuristic" {
		t.Fatalf("tuned_from = %q, want heuristic", st.TunedFrom)
	}
	if j.Spec.P < 1 || j.Spec.K < 1 {
		t.Fatalf("heuristic left an invalid strategy: P=%d k=%d", j.Spec.P, j.Spec.K)
	}
}

// A trajectory whose best cell the pool cannot execute for this job shape
// (distributed never runs named kernels) falls back to the pick's native
// shape instead of admitting an unrunnable job.
func TestAutoNamedNeverDistributed(t *testing.T) {
	s := &benchfmt.Summary{
		Stamp: benchfmt.Stamp{Schema: benchfmt.Schema, Date: "2026-08-08"},
		Cells: []benchfmt.Cell{
			trajectoryCell("mvm", "S", "distributed", 2, 1, "cyclic", 0.1),
		},
	}
	tn := rts.NewTuner(s, rts.TunerOptions{MaxP: 8, Engines: []string{"native", "distributed"}})
	svc := newTestService(t, Options{Workers: 1, Tuner: tn})
	j, err := svc.Submit(JobSpec{Kernel: "mvm", Dataset: "S", Seed: 1, Steps: 1, Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	if j.Spec.Engine == "distributed" {
		t.Fatal("named kernel admitted on the distributed engine")
	}
}

// The metrics snapshot exports the cumulative queue and schedule-cache
// counters alongside the nested cache block.
func TestMetricsQueueAndCacheCounters(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	spec := rawSpec(5, 2, 1, 600, 64, 1)
	for i := 0; i < 2; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, j); st.State != StateDone {
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
	}
	m := s.Metrics()
	if m.QueueEnqueued != 2 {
		t.Fatalf("queue_enqueued = %d, want 2", m.QueueEnqueued)
	}
	if m.QueuePeak < 0 || m.QueuePeak > 2 {
		t.Fatalf("queue_peak = %d outside [0,2]", m.QueuePeak)
	}
	if m.CacheHitsTotal != m.Cache.Hits || m.CacheMissesTotal != m.Cache.Misses {
		t.Fatalf("top-level cache counters (%d/%d) diverge from nested (%d/%d)",
			m.CacheHitsTotal, m.CacheMissesTotal, m.Cache.Hits, m.Cache.Misses)
	}
	// Two identical jobs: the first misses the schedule cache, the second hits.
	if m.CacheMissesTotal < 1 || m.CacheHitsTotal < 1 {
		t.Fatalf("cache traffic hits=%d misses=%d, want at least one of each", m.CacheHitsTotal, m.CacheMissesTotal)
	}
}
