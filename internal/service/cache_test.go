package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"irred/internal/inspector"
)

// testSchedules builds a full P-processor schedule set over random
// indirection arrays.
func testSchedules(t *testing.T, seed int64, p, k, iters, elems int) (inspector.Config, [][]int32, []*inspector.Schedule) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := inspector.Config{P: p, K: k, NumIters: iters, NumElems: elems, Dist: inspector.Cyclic}
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	scheds := make([]*inspector.Schedule, p)
	for q := 0; q < p; q++ {
		s, err := inspector.Light(cfg, q, ind...)
		if err != nil {
			t.Fatal(err)
		}
		scheds[q] = s
	}
	return cfg, ind, scheds
}

func TestCacheLRUAndCounters(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := range keys {
		cfg, ind, scheds := testSchedules(t, int64(i+1), 2, 2, 50, 16)
		keys[i] = inspector.ScheduleKey(cfg, ind...)
		if err := c.Put(keys[i], scheds); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: key 0 must have been evicted, 1 and 2 retained.
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("retained entry missing")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("retained entry missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want entries 2, evictions 1, hits 2, misses 1", st)
	}
	// Getting key 1 made it most-recent; inserting a new key must evict 2.
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("entry missing")
	}
	cfg, ind, scheds := testSchedules(t, 9, 2, 2, 50, 16)
	if err := c.Put(inspector.ScheduleKey(cfg, ind...), scheds); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keys[2]); ok {
		t.Fatal("LRU order wrong: key 2 should have been evicted")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("LRU order wrong: key 1 should have survived")
	}
}

func TestCachePersistenceWarmsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg, ind, scheds := testSchedules(t, 7, 4, 2, 200, 33)
	key := inspector.ScheduleKey(cfg, ind...)

	c1, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key, scheds); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory starts warm: the first Get is
	// a hit with no inspector run anywhere in sight.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 1 {
		t.Fatalf("restarted cache has %d entries, want 1", st.Entries)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("restarted cache missed a persisted key")
	}
	if len(got) != cfg.P {
		t.Fatalf("loaded %d schedules, want %d", len(got), cfg.P)
	}
	for p, s := range got {
		if s.Proc != p || s.Cfg != cfg {
			t.Fatalf("schedule %d loaded wrong: proc %d cfg %+v", p, s.Proc, s.Cfg)
		}
		if err := s.Check(ind...); err != nil {
			t.Fatalf("loaded schedule %d fails invariants: %v", p, err)
		}
	}
	if st := c2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after warm get = %+v", st)
	}
}

func TestCacheDiskFallthroughAfterEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	cfgA, indA, schedsA := testSchedules(t, 11, 2, 1, 60, 20)
	cfgB, indB, schedsB := testSchedules(t, 12, 2, 1, 60, 20)
	keyA := inspector.ScheduleKey(cfgA, indA...)
	keyB := inspector.ScheduleKey(cfgB, indB...)
	if err := c.Put(keyA, schedsA); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(keyB, schedsB); err != nil {
		t.Fatal(err)
	}
	// keyA was evicted from memory but survives on disk.
	if _, ok := c.Get(keyA); !ok {
		t.Fatal("disk fallthrough failed for evicted entry")
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", st)
	}
}

func TestCacheIgnoresCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.irs"), []byte("not a schedule"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("corrupt file loaded: %+v", st)
	}
	if _, ok := c.Get("deadbeef"); ok {
		t.Fatal("corrupt file served")
	}
}

func TestCacheFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg, ind, scheds := testSchedules(t, 21, 3, 2, 150, 41)
	path := filepath.Join(dir, "x.irs")
	if err := writeCacheFile(path, scheds); err != nil {
		t.Fatal(err)
	}
	got, err := readCacheFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scheds) {
		t.Fatalf("got %d schedules, want %d", len(got), len(scheds))
	}
	for p := range got {
		if got[p].Cfg != cfg || got[p].Proc != p || got[p].BufLen != scheds[p].BufLen {
			t.Fatalf("schedule %d header changed", p)
		}
		if err := got[p].Check(ind...); err != nil {
			t.Fatal(err)
		}
	}
}
