package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// Session HTTP handlers. Status codes carry the session lifecycle:
//
//	201  session opened (body: SessionStatus with the base result)
//	200  delta applied / status read
//	409  another delta for the same session is still in flight (retry)
//	410  session gone — never opened here, evicted, closed, or lost to a
//	     daemon restart; the client must reopen and replay its base state
//	503  service draining or closed
//	400  everything else (malformed spec, malformed delta, range errors)
//
// 410 rather than 404 is deliberate: sessions are memory-resident and a
// restarted daemon must fail closed instead of guessing, so "gone" is a
// permanent verdict for that id and clients should not retry it.

func writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSessionGone):
		writeError(w, http.StatusGone, err.Error())
	case errors.Is(err, ErrSessionBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Service) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding session spec: "+err.Error())
		return
	}
	st, err := s.OpenSession(r.Context(), spec)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	if r.URL.Query().Get("result") == "0" {
		st.Result = nil
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	includeResult := r.URL.Query().Get("result") == "1"
	st, err := s.GetSession(r.PathValue("id"), includeResult)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSessionDelta accepts either wire form: the versioned binary IRDB
// frame (Content-Type: application/octet-stream — checksummed, compact,
// what irredload streams) or a JSON Delta for hand-driven use.
func (s *Service) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxDeltaBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading delta body: "+err.Error())
		return
	}
	var d *Delta
	if strings.Contains(r.Header.Get("Content-Type"), "octet-stream") {
		d, err = DecodeDelta(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		d = new(Delta)
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(d); err != nil {
			writeError(w, http.StatusBadRequest, "decoding delta: "+err.Error())
			return
		}
	}
	includeResult := r.URL.Query().Get("result") != "0"
	st, err := s.ApplyDelta(r.Context(), r.PathValue("id"), d, includeResult)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.CloseSession(id); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}{ID: id, State: "closed"})
}
