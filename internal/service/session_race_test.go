package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestSessionConcurrentDeltas hammers one session from several goroutines.
// The contract under contention: deltas serialize (one holds the gate, the
// rest bounce with ErrSessionBusy and retry), and the session's state is
// never corrupted — each worker rewrites its own disjoint slice of the
// iteration space, so after every submission lands, the indirection arrays
// and therefore the result are deterministic regardless of arrival order.
// CI runs this under -race via both the test job and the race-soak job.
func TestSessionConcurrentDeltas(t *testing.T) {
	const (
		workers = 4
		rounds  = 8
		span    = 150 // iterations owned by each worker
	)
	iters := workers * span
	s := newTestService(t, Options{Workers: 2})
	spec := rawSpec(77, 2, 2, iters, 128, 1)

	mirror := spec
	mirror.Ind = make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		mirror.Ind[r] = append([]int32(nil), spec.Ind[r]...)
	}

	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// workerDelta is worker w's round-r delta: absolute writes into the
	// worker's own iteration range, values a pure function of (w, r, j).
	workerDelta := func(w, r int) *Delta {
		d := &Delta{Changed: make([]int32, span), Values: make([][]int32, len(spec.Ind))}
		for j := 0; j < span; j++ {
			d.Changed[j] = int32(w*span + j)
		}
		rng := rand.New(rand.NewSource(int64(1000*w + r)))
		for ref := range d.Values {
			d.Values[ref] = make([]int32, span)
			for j := range d.Values[ref] {
				d.Values[ref][j] = int32(rng.Intn(spec.NumElems))
			}
		}
		return d
	}

	var wg sync.WaitGroup
	var busyN int64
	var busyMu sync.Mutex
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d := workerDelta(w, r)
				for {
					_, err := s.ApplyDelta(context.Background(), id, d, false)
					if errors.Is(err, ErrSessionBusy) {
						busyMu.Lock()
						busyN++
						busyMu.Unlock()
						continue
					}
					if err != nil {
						errc <- err
						return
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final state: every worker's last round committed, whatever the
	// interleaving. One more (empty) delta re-runs the reduction on it.
	for w := 0; w < workers; w++ {
		applyLocal(&mirror, workerDelta(w, rounds-1))
	}
	empty := &Delta{Changed: []int32{}, Values: make([][]int32, len(spec.Ind))}
	for r := range empty.Values {
		empty.Values[r] = []int32{}
	}
	st, err = s.ApplyDelta(context.Background(), id, empty, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != workers*rounds+1 {
		t.Fatalf("%d deltas recorded, want %d (busy refusals must not count)", st.Deltas, workers*rounds+1)
	}
	want, err := mirror.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("result[%d] = %g, want %g (session corrupted under contention, %d busy refusals)", e, st.Result[e], want[e], busyN)
		}
	}
	if st.ResultSHA256 != HashResult(want) {
		t.Fatal("result hash does not match the oracle")
	}
}
