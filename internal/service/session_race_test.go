package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestSessionConcurrentDeltas hammers one session from several goroutines.
// The contract under contention: deltas serialize (one holds the gate, the
// rest bounce with ErrSessionBusy and retry), and the session's state is
// never corrupted — each worker rewrites its own disjoint slice of the
// iteration space, so after every submission lands, the indirection arrays
// and therefore the result are deterministic regardless of arrival order.
// CI runs this under -race via both the test job and the race-soak job.
func TestSessionConcurrentDeltas(t *testing.T) {
	const (
		workers = 4
		rounds  = 8
		span    = 150 // iterations owned by each worker
	)
	iters := workers * span
	s := newTestService(t, Options{Workers: 2})
	spec := rawSpec(77, 2, 2, iters, 128, 1)

	mirror := spec
	mirror.Ind = make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		mirror.Ind[r] = append([]int32(nil), spec.Ind[r]...)
	}

	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// workerDelta is worker w's round-r delta: absolute writes into the
	// worker's own iteration range, values a pure function of (w, r, j).
	workerDelta := func(w, r int) *Delta {
		d := &Delta{Changed: make([]int32, span), Values: make([][]int32, len(spec.Ind))}
		for j := 0; j < span; j++ {
			d.Changed[j] = int32(w*span + j)
		}
		rng := rand.New(rand.NewSource(int64(1000*w + r)))
		for ref := range d.Values {
			d.Values[ref] = make([]int32, span)
			for j := range d.Values[ref] {
				d.Values[ref][j] = int32(rng.Intn(spec.NumElems))
			}
		}
		return d
	}

	var wg sync.WaitGroup
	var busyN int64
	var busyMu sync.Mutex
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d := workerDelta(w, r)
				for {
					_, err := s.ApplyDelta(context.Background(), id, d, false)
					if errors.Is(err, ErrSessionBusy) {
						busyMu.Lock()
						busyN++
						busyMu.Unlock()
						continue
					}
					if err != nil {
						errc <- err
						return
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Final state: every worker's last round committed, whatever the
	// interleaving. One more (empty) delta re-runs the reduction on it.
	for w := 0; w < workers; w++ {
		applyLocal(&mirror, workerDelta(w, rounds-1))
	}
	empty := &Delta{Changed: []int32{}, Values: make([][]int32, len(spec.Ind))}
	for r := range empty.Values {
		empty.Values[r] = []int32{}
	}
	st, err = s.ApplyDelta(context.Background(), id, empty, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != workers*rounds+1 {
		t.Fatalf("%d deltas recorded, want %d (busy refusals must not count)", st.Deltas, workers*rounds+1)
	}
	want, err := mirror.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("result[%d] = %g, want %g (session corrupted under contention, %d busy refusals)", e, st.Result[e], want[e], busyN)
		}
	}
	if st.ResultSHA256 != HashResult(want) {
		t.Fatal("result hash does not match the oracle")
	}
}

// TestSessionEvictionRacesInFlightDelta pins the eviction/apply race: an
// LRU eviction that lands while a delta is mid-apply must make every later
// verb on the evicted session answer ErrSessionGone (410) — the in-flight
// apply may finish on the session-private clone, but nothing stale or
// half-revised is ever served again. The in-flight apply is simulated by
// holding the session gate exactly the way ApplyDelta does.
func TestSessionEvictionRacesInFlightDelta(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxSessions: 1})
	rng := rand.New(rand.NewSource(61))
	spec := rawSpec(61, 2, 1, 400, 64, 1)

	st1, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := s.sessions.get(st1.ID)
	if !ok {
		t.Fatal("opened session not resident")
	}

	// A delta is in flight: it holds the gate.
	sess.gate <- struct{}{}

	// Concurrent deltas bounce with 409, not 410 — the session is alive,
	// just busy.
	if _, err := s.ApplyDelta(context.Background(), st1.ID, mkDelta(rng, &spec, 2), false); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("delta during in-flight apply: %v, want ErrSessionBusy", err)
	}

	// Opening a second session (MaxSessions = 1) evicts the first while
	// its apply is still in flight.
	spec2 := rawSpec(62, 2, 1, 400, 64, 1)
	st2, err := s.OpenSession(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}

	// The evicted session is gone immediately, even though the apply has
	// not released the gate yet.
	if _, err := s.GetSession(st1.ID, false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("GetSession on evicted session: %v, want ErrSessionGone", err)
	}
	sess.mu.Lock()
	closed := sess.closed
	sess.mu.Unlock()
	if !closed {
		t.Fatal("evicted session not marked closed: a racing pointer holder could serve a stale schedule")
	}

	// The in-flight apply finishes; the next verb must still be 410,
	// never a stale or partial schedule.
	<-sess.gate
	if _, err := s.ApplyDelta(context.Background(), st1.ID, mkDelta(rng, &spec, 2), false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("delta after eviction: %v, want ErrSessionGone", err)
	}

	// The survivor is unaffected.
	d2 := mkDelta(rng, &spec2, 3)
	applyLocal(&spec2, d2)
	st2, err = s.ApplyDelta(context.Background(), st2.ID, d2, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec2.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ResultSHA256 != HashResult(want) {
		t.Fatal("surviving session result does not match the oracle")
	}

	m := s.Metrics().Sessions
	if m.Evicted != 1 || m.Live != 1 {
		t.Fatalf("session metrics = %+v, want 1 evicted, 1 live", m)
	}
}

// TestSessionEvictionHammer races deltas against LRU evictions under
// -race. Every delta rewrites iterations to their existing values, so any
// successful response must equal the base oracle bitwise: a stale or
// half-revised schedule surviving an eviction would show up as a wrong
// result, not just a wrong error code. Per goroutine, once a verb answers
// ErrSessionGone the session must stay gone — a success after a 410 means
// the store resurrected evicted state.
func TestSessionEvictionHammer(t *testing.T) {
	const (
		appliers = 3
		rounds   = 20
		churn    = 12
	)
	s := newTestService(t, Options{Workers: 2, MaxSessions: 2})
	spec := rawSpec(71, 2, 2, 300, 64, 1)
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	wantSHA := HashResult(want)

	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// identityDelta rewrites n iterations to the values they already hold.
	identityDelta := func(rng *rand.Rand, n int) *Delta {
		perm := rng.Perm(spec.NumIters)[:n]
		sort.Ints(perm)
		d := &Delta{Changed: make([]int32, n), Values: make([][]int32, len(spec.Ind))}
		for j, it := range perm {
			d.Changed[j] = int32(it)
		}
		for r := range d.Values {
			d.Values[r] = make([]int32, n)
			for j, it := range perm {
				d.Values[r][j] = spec.Ind[r][it]
			}
		}
		return d
	}

	var wg sync.WaitGroup
	errc := make(chan error, appliers+1)
	for w := 0; w < appliers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			gone := false
			for r := 0; r < rounds; r++ {
				st, err := s.ApplyDelta(context.Background(), id, identityDelta(rng, 4), true)
				switch {
				case err == nil:
					if gone {
						errc <- fmt.Errorf("worker %d: delta succeeded after the session answered 410", w)
						return
					}
					if st.ResultSHA256 != wantSHA {
						errc <- fmt.Errorf("worker %d round %d: result diverged from the oracle (stale/partial schedule served)", w, r)
						return
					}
				case errors.Is(err, ErrSessionBusy):
					// Contention, retry next round.
				case errors.Is(err, ErrSessionGone):
					gone = true
				default:
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// The evictor churns the LRU with fresh sessions until the hammered
	// session is evicted.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churn; i++ {
			if _, err := s.OpenSession(context.Background(), rawSpec(int64(200+i), 2, 1, 200, 48, 1)); err != nil {
				errc <- fmt.Errorf("evictor open %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The concurrent churn may or may not have caught the hammered
	// session (the appliers keep bumping its recency); with the appliers
	// stopped, two more opens into the 2-session store evict everything
	// that came before them deterministically. From here every verb on
	// the hammered id is 410.
	for i := 0; i < 2; i++ {
		if _, err := s.OpenSession(context.Background(), rawSpec(int64(300+i), 2, 1, 200, 48, 1)); err != nil {
			t.Fatalf("post-churn open %d: %v", i, err)
		}
	}
	if _, err := s.GetSession(id, false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("GetSession after churn: %v, want ErrSessionGone", err)
	}
	rng := rand.New(rand.NewSource(99))
	if _, err := s.ApplyDelta(context.Background(), id, identityDelta(rng, 2), false); !errors.Is(err, ErrSessionGone) {
		t.Fatalf("ApplyDelta after churn: %v, want ErrSessionGone", err)
	}
}
