package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"irred/internal/inspector"
	"irred/internal/obs"
	"irred/internal/rts"
)

// This file is the session store: the streaming half of the service. A
// one-shot job pays the LightInspector (or a cache hit) every submission;
// a session pays it once, keeps a private clone of the schedule set
// resident, and then absorbs sparse indirection-array deltas through
// Schedule.Update — O(changed iterations) instead of O(problem). When a
// delta rewrites too much of the problem for the incremental path to win,
// the session falls back to a full re-inspection; the threshold is the
// measured crossover from the adaptive sweep cells (EXPERIMENTS.md), not
// a guess.
//
// Sessions are deliberately ephemeral: they live in memory, are evicted
// LRU beyond MaxSessions, and do not survive a daemon restart. Serving a
// schedule that might be stale would silently corrupt every later delta,
// so an unknown, evicted, closed, or restart-lost session answers 410
// Gone — the client reopens and replays from its current base state.

var (
	// ErrSessionGone is returned for session ids this daemon does not hold:
	// never opened here, evicted, explicitly closed, or lost to a restart.
	ErrSessionGone = errors.New("service: session gone (evicted, closed, or daemon restarted)")
	// ErrSessionBusy is returned when a delta arrives while another delta
	// for the same session is still being applied. Deltas mutate the
	// resident schedule in place, so they serialize; a concurrent client
	// gets 409 and retries rather than corrupting the session.
	ErrSessionBusy = errors.New("service: session busy applying another delta")
)

// DefaultFallbackFrac is the delta fraction beyond which a session
// re-inspects from scratch instead of updating incrementally. The
// adaptive sweep (bench/BENCH_2026-08-08_adaptive.json) measures the
// incremental-vs-full crossover at roughly 40% of iterations changed per
// step (incremental is 31-39x faster at 1%, ~2.3x at 20%, ~1.3x at 35%,
// and loses at 50%); 0.25 keeps at least a ~2x win on every measured cell
// while leaving margin for Update's per-iteration constant.
const DefaultFallbackFrac = 0.25

// Session is one resident streaming reduction: the base job spec (whose
// Ind arrays track every applied delta), a session-owned clone of the
// schedule set, and the incremental/full accounting.
type Session struct {
	ID string

	// gate serializes delta application (capacity-1 semaphore; TryLock
	// semantics so a concurrent submitter is refused, not queued).
	gate chan struct{}

	mu       sync.Mutex
	spec     JobSpec
	scheds   []*inspector.Schedule
	created  time.Time
	el       *list.Element // position in the store's LRU list
	closed   bool
	cacheHit bool
	key      string

	deltas, incr, full int64
	lastFrac           float64
	lastIncr           bool
	inspectMS, runMS   float64
	resultLen          int
	resultSHA          string
	result             []float64
}

// SessionStatus is the wire representation of a session after open, after
// a delta, or on GET.
type SessionStatus struct {
	ID string `json:"id"`
	// Deltas counts applied deltas; Incremental and Full split them by
	// which re-inspection path each took (the open itself counts in
	// neither).
	Deltas      int64 `json:"deltas"`
	Incremental int64 `json:"incremental"`
	Full        int64 `json:"full"`
	// FallbackFrac is the configured threshold; LastFrac the fraction of
	// iterations the most recent delta changed; LastIncremental whether it
	// stayed on the incremental path.
	FallbackFrac    float64 `json:"fallback_frac"`
	LastFrac        float64 `json:"last_frac,omitempty"`
	LastIncremental bool    `json:"last_incremental,omitempty"`
	// CacheHit and ScheduleKey describe the base schedule build at open.
	CacheHit    bool   `json:"cache_hit"`
	ScheduleKey string `json:"schedule_key,omitempty"`
	// InspectMS is the schedule maintenance cost of the last operation
	// (clone+index at open, Update or re-inspection per delta); RunMS the
	// reduction run that followed it.
	InspectMS    float64   `json:"inspect_ms"`
	RunMS        float64   `json:"run_ms"`
	ResultLen    int       `json:"result_len,omitempty"`
	ResultSHA256 string    `json:"result_sha256,omitempty"`
	Result       []float64 `json:"result,omitempty"`
}

// status snapshots the session; includeResult attaches the (possibly
// large) result vector.
func (sess *Session) status(includeResult bool, fallback float64) *SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := &SessionStatus{
		ID:              sess.ID,
		Deltas:          sess.deltas,
		Incremental:     sess.incr,
		Full:            sess.full,
		FallbackFrac:    fallback,
		LastFrac:        sess.lastFrac,
		LastIncremental: sess.lastIncr,
		CacheHit:        sess.cacheHit,
		ScheduleKey:     sess.key,
		InspectMS:       sess.inspectMS,
		RunMS:           sess.runMS,
		ResultLen:       sess.resultLen,
		ResultSHA256:    sess.resultSHA,
	}
	if includeResult {
		st.Result = append([]float64(nil), sess.result...)
	}
	return st
}

// sessionStore holds the resident sessions with LRU eviction and the
// cumulative counters surfaced at /metrics.
type sessionStore struct {
	mu       sync.Mutex
	max      int
	fallback float64
	byID     map[string]*Session
	lru      *list.List // front = most recently used
	nextID   int64

	opened, closed, evicted int64
	deltas, incrN, fullN    int64
}

func newSessionStore(max int, fallback float64) *sessionStore {
	if max < 1 {
		max = 64
	}
	if fallback <= 0 || fallback > 1 {
		fallback = DefaultFallbackFrac
	}
	return &sessionStore{
		max: max, fallback: fallback,
		byID: make(map[string]*Session),
		lru:  list.New(),
	}
}

// SessionMetrics is the /metrics sessions block.
type SessionMetrics struct {
	Live    int   `json:"live"`
	Opened  int64 `json:"opened"`
	Closed  int64 `json:"closed"`
	Evicted int64 `json:"evicted"`
	// DeltasApplied counts successfully applied deltas; Incremental vs
	// FullReinspects split them by path, and IncrementalRatio is the
	// fraction the resident schedule absorbed without re-inspection — the
	// amortization the session store exists to deliver.
	DeltasApplied    int64   `json:"deltas_applied"`
	Incremental      int64   `json:"incremental_updates"`
	FullReinspects   int64   `json:"full_reinspects"`
	IncrementalRatio float64 `json:"incremental_ratio"`
}

func (st *sessionStore) metrics() SessionMetrics {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := SessionMetrics{
		Live: len(st.byID), Opened: st.opened, Closed: st.closed, Evicted: st.evicted,
		DeltasApplied: st.deltas, Incremental: st.incrN, FullReinspects: st.fullN,
	}
	if st.deltas > 0 {
		m.IncrementalRatio = float64(st.incrN) / float64(st.deltas)
	}
	return m
}

// get looks a session up and marks it most recently used.
func (st *sessionStore) get(id string) (*Session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.byID[id]
	if ok {
		st.lru.MoveToFront(sess.el)
	}
	return sess, ok
}

// insert admits a session, evicting from the LRU tail to stay within max.
func (st *sessionStore) insert(sess *Session) (evicted []*Session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	sess.ID = fmt.Sprintf("s%06d", st.nextID)
	sess.el = st.lru.PushFront(sess)
	st.byID[sess.ID] = sess
	st.opened++
	for len(st.byID) > st.max {
		back := st.lru.Back()
		old := back.Value.(*Session)
		st.lru.Remove(back)
		delete(st.byID, old.ID)
		st.evicted++
		evicted = append(evicted, old)
	}
	return evicted
}

// remove drops a session (explicit close). Reports whether it existed.
func (st *sessionStore) remove(id string) (*Session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	st.lru.Remove(sess.el)
	delete(st.byID, id)
	st.closed++
	return sess, true
}

// drop removes a session that failed mid-delta (fail closed: later
// requests see 410, never a half-updated schedule).
func (st *sessionStore) drop(sess *Session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.byID[sess.ID]; ok {
		st.lru.Remove(sess.el)
		delete(st.byID, sess.ID)
		st.closed++
	}
}

// all snapshots the resident sessions (shutdown).
func (st *sessionStore) all() []*Session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Session, 0, len(st.byID))
	for _, sess := range st.byID {
		out = append(out, sess)
	}
	return out
}

func (st *sessionStore) countDelta(incremental bool) {
	st.mu.Lock()
	st.deltas++
	if incremental {
		st.incrN++
	} else {
		st.fullN++
	}
	st.mu.Unlock()
}

// markClosed flags a session so racing holders of the pointer fail
// instead of serving a stale schedule.
func (sess *Session) markClosed() {
	sess.mu.Lock()
	sess.closed = true
	sess.mu.Unlock()
}

// validateSessionSpec restricts sessions to the shapes the incremental
// path supports: raw reductions on the native engine, no chaos.
func validateSessionSpec(spec *JobSpec) error {
	if !spec.IsRaw() {
		return fmt.Errorf("service: sessions accept raw reduction jobs only (named kernels regenerate their data per job)")
	}
	if strings.ToLower(spec.Engine) == "distributed" {
		return fmt.Errorf("service: sessions run on the native engine only")
	}
	if spec.Chaos != nil {
		return fmt.Errorf("service: sessions do not accept chaos specs")
	}
	if spec.Auto {
		return fmt.Errorf("service: sessions choose their own strategy (auto is job-only)")
	}
	// Multi-loop sessions exist to amortize one resident schedule clone
	// across every loop of a sweep, so each loop must traverse the
	// session's base indirection: a loop with private arrays would need
	// its own resident clone and its own delta stream, which is the
	// one-shot job path's shape, not a session's.
	for l, lp := range spec.Loops {
		if lp.Ind != nil {
			return fmt.Errorf("service: session loop %d carries its own indirection arrays; session loops inherit the resident arrays (per-loop ind is job-only)", l)
		}
	}
	return spec.Validate()
}

// OpenSession admits a streaming session: the base schedules are served
// through the shared cache, deep-cloned into session ownership (cache
// entries are immutable shared pointers — Update on one would corrupt
// every concurrent reader), indexed for incremental updates, and the base
// reduction is run once so the client gets a verifiable baseline.
func (s *Service) OpenSession(ctx context.Context, spec JobSpec) (*SessionStatus, error) {
	if err := validateSessionSpec(&spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed || s.draining.Load() {
		return nil, ErrClosed
	}

	// The session mutates its indirection arrays on every delta; the
	// submitted spec (decoded per request over HTTP, but shared when the
	// store is driven in-process) must stay untouched.
	ind := make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		ind[r] = append([]int32(nil), spec.Ind[r]...)
	}
	spec.Ind = ind

	dist, err := spec.dist()
	if err != nil {
		return nil, err
	}
	l := &rts.Loop{
		Cfg: inspector.Config{
			P: spec.P, K: spec.K,
			NumIters: spec.NumIters, NumElems: spec.NumElems,
			Dist: dist,
		},
		Mode: rts.Reduce,
		Ind:  spec.Ind,
	}
	t0 := time.Now()
	base, hit, key, err := s.schedules(l)
	if err != nil {
		return nil, err
	}
	scheds := inspector.CloneSchedules(base)
	for _, sc := range scheds {
		sc.BeginIncremental()
	}
	inspectMS := float64(time.Since(t0)) / 1e6

	sess := &Session{
		gate:      make(chan struct{}, 1),
		spec:      spec,
		scheds:    scheds,
		created:   time.Now(),
		cacheHit:  hit,
		key:       key,
		inspectMS: inspectMS,
	}
	if err := s.runSession(ctx, sess); err != nil {
		return nil, err
	}
	for _, old := range s.sessions.insert(sess) {
		old.markClosed()
		s.trace.Event("session/evict", -1, -1, -1, -1)
	}
	s.trace.Event("session/open", -1, -1, -1, -1)
	return sess.status(true, s.sessions.fallback), nil
}

// GetSession returns a session's status; ErrSessionGone for unknown ids.
func (s *Service) GetSession(id string, includeResult bool) (*SessionStatus, error) {
	sess, ok := s.sessions.get(id)
	if !ok {
		return nil, ErrSessionGone
	}
	return sess.status(includeResult, s.sessions.fallback), nil
}

// CloseSession removes a session explicitly.
func (s *Service) CloseSession(id string) error {
	sess, ok := s.sessions.remove(id)
	if !ok {
		return ErrSessionGone
	}
	sess.markClosed()
	s.trace.Event("session/close", -1, -1, -1, -1)
	return nil
}

// ApplyDelta applies one sparse indirection revision to a session:
// validate, mutate the resident arrays, revise the schedules — Update
// (incremental, O(changed)) below the fallback threshold, full
// re-inspection above it — and re-run the reduction so the response
// carries a result the client can verify against its own oracle.
func (s *Service) ApplyDelta(ctx context.Context, id string, d *Delta, includeResult bool) (*SessionStatus, error) {
	sess, ok := s.sessions.get(id)
	if !ok {
		return nil, ErrSessionGone
	}
	select {
	case sess.gate <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w (session %s)", ErrSessionBusy, id)
	}
	defer func() { <-sess.gate }()

	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil, ErrSessionGone
	}
	spec := &sess.spec
	if err := d.validate(); err != nil {
		sess.mu.Unlock()
		return nil, err
	}
	if len(d.Values) != len(spec.Ind) {
		sess.mu.Unlock()
		return nil, fmt.Errorf("service: delta has %d value rows, session has %d indirection arrays", len(d.Values), len(spec.Ind))
	}
	for _, it := range d.Changed {
		if int(it) >= spec.NumIters {
			sess.mu.Unlock()
			return nil, fmt.Errorf("service: delta iteration %d outside [0,%d)", it, spec.NumIters)
		}
	}
	for r, row := range d.Values {
		for _, v := range row {
			if int(v) >= spec.NumElems {
				sess.mu.Unlock()
				return nil, fmt.Errorf("service: delta value %d in ref %d outside [0,%d)", v, r, spec.NumElems)
			}
		}
	}

	// Commit the revision to the resident arrays, then revise schedules.
	for r, row := range d.Values {
		for j, it := range d.Changed {
			spec.Ind[r][it] = row[j]
		}
	}
	frac := 0.0
	if spec.NumIters > 0 {
		frac = float64(len(d.Changed)) / float64(spec.NumIters)
	}
	incremental := frac <= s.sessions.fallback
	t0 := time.Now()
	if incremental {
		for _, sc := range sess.scheds {
			ds := s.trace.Begin()
			err := sc.Update(d.Changed, spec.Ind...)
			s.trace.End(obs.SpanDelta, sc.Proc, -1, -1, -1, ds)
			if err != nil {
				// The schedule may be half-revised: fail closed. The session
				// is gone (410 from now on), never served stale.
				sess.mu.Unlock()
				s.sessions.drop(sess)
				sess.markClosed()
				return nil, fmt.Errorf("service: incremental update failed, session closed: %w", err)
			}
		}
	} else {
		dist, _ := spec.dist()
		cfg := inspector.Config{
			P: spec.P, K: spec.K,
			NumIters: spec.NumIters, NumElems: spec.NumElems,
			Dist: dist,
		}
		fresh := make([]*inspector.Schedule, spec.P)
		for p := 0; p < spec.P; p++ {
			sc, err := inspector.LightTraced(cfg, p, s.trace, spec.Ind...)
			if err != nil {
				sess.mu.Unlock()
				s.sessions.drop(sess)
				sess.markClosed()
				return nil, fmt.Errorf("service: re-inspection failed, session closed: %w", err)
			}
			sc.BeginIncremental()
			fresh[p] = sc
		}
		sess.scheds = fresh
		s.trace.Event("session/fallback", -1, -1, -1, -1)
	}
	sess.inspectMS = float64(time.Since(t0)) / 1e6
	sess.deltas++
	if incremental {
		sess.incr++
	} else {
		sess.full++
	}
	sess.lastFrac, sess.lastIncr = frac, incremental
	sess.mu.Unlock()

	s.sessions.countDelta(incremental)
	if err := s.runSession(ctx, sess); err != nil {
		s.sessions.drop(sess)
		sess.markClosed()
		return nil, err
	}
	return sess.status(includeResult, s.sessions.fallback), nil
}

// runSession executes the session's reduction with its resident schedules
// on the native engine and records the result. The caller must hold the
// session gate (or own the session exclusively, as OpenSession does).
func (s *Service) runSession(ctx context.Context, sess *Session) error {
	sess.mu.Lock()
	spec := &sess.spec
	dist, err := spec.dist()
	if err != nil {
		sess.mu.Unlock()
		return err
	}
	l := &rts.Loop{
		Cfg: inspector.Config{
			P: spec.P, K: spec.K,
			NumIters: spec.NumIters, NumElems: spec.NumElems,
			Dist: dist,
		},
		Mode:  rts.Reduce,
		Ind:   spec.Ind,
		Trace: s.trace,
	}
	scheds := sess.scheds
	nLoops := spec.numLoops()
	contribs := make([]rts.ContribFunc, nLoops)
	for li := 0; li < nLoops; li++ {
		contribs[li] = spec.contribFor(li)
	}
	steps := spec.steps()
	sess.mu.Unlock()

	// Every loop of a multi-loop session traverses the session's base
	// indirection (validateSessionSpec enforces it), so all of them run
	// against the one resident schedule clone — each delta pays schedule
	// maintenance once, and every loop of every later sweep rides on it.
	// Schedules are read-only during runs; the natives execute in loop
	// order, sharing one reduction array so loop l+1 sees loop l's
	// contributions of the same sweep.
	natives := make([]*rts.Native, nLoops)
	x := make([]float64, l.Cfg.NumElems)
	for li := 0; li < nLoops; li++ {
		n, err := rts.NewNativeFrom(l, scheds)
		if err != nil {
			return err
		}
		n.Contribs = contribs[li]
		n.X = x
		natives[li] = n
	}
	t0 := time.Now()
	if nLoops == 1 {
		if err := natives[0].RunContext(ctx, steps); err != nil {
			return err
		}
	} else {
		for step := 0; step < steps; step++ {
			for _, n := range natives {
				if err := n.RunContext(ctx, 1); err != nil {
					return err
				}
			}
		}
	}
	runMS := float64(time.Since(t0)) / 1e6

	sess.mu.Lock()
	sess.runMS = runMS
	sess.result = x
	sess.resultLen = len(x)
	sess.resultSHA = HashResult(x)
	sess.mu.Unlock()
	return nil
}
