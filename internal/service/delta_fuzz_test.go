package service

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func fuzzDeltaBytes(seed int64, numRef, count, iters, elems int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b, err := EncodeDelta(randomDelta(rng, numRef, count, iters, elems))
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzDeltaCodec holds DecodeDelta to the serializer contract the session
// API depends on: any input either fails cleanly or yields a canonical
// delta that re-encodes to the exact accepted bytes and survives a second
// round trip. Mirrors inspector.FuzzSerializeRoundTrip for the IRSC codec.
func FuzzDeltaCodec(f *testing.F) {
	f.Add(fuzzDeltaBytes(1, 1, 1, 16, 8))
	f.Add(fuzzDeltaBytes(2, 2, 30, 1000, 100))
	f.Add(fuzzDeltaBytes(3, 16, 5, 50, 10))
	f.Add(fuzzDeltaBytes(4, 3, 0, 10, 10))
	f.Add([]byte("IRDB"))
	f.Add([]byte("IRDB\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if err := d.validate(); err != nil {
			t.Fatalf("accepted delta fails validate: %v", err)
		}
		enc, err := EncodeDelta(d)
		if err != nil {
			t.Fatalf("accepted delta fails to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("accepted frame is not its own canonical encoding")
		}
		d2, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("re-decoding canonical frame: %v", err)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatal("delta not stable across a round trip")
		}
	})
}
