// Package service is the reduction-as-a-service layer: a job-oriented
// server over the paper's execution strategy. It turns the paper's
// amortization economics — LightInspector runs once, its schedules serve
// ~100 executor iterations, and the communication schedule is independent
// of the values flowing through — into a long-running daemon that caches
// schedules across *requests*: any job arriving with indirection arrays
// and strategy already seen reuses the cached P-processor schedule set and
// goes straight to execution on the native engine.
//
// The package has four parts: the schedule Cache (LRU + optional disk
// persistence via inspector/serialize), the executor pool (bounded
// concurrency, bounded admission queue, per-job context cancellation
// plumbed into the rts native run loops), the HTTP API (http.go, exposed by
// cmd/irredd), and the client (subpackage client) used by tests and
// irredrun -server.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"irred/internal/fault"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/obs"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// ErrChaosDisabled is returned for jobs carrying a chaos spec when the
// service was not started with chaos enabled.
var ErrChaosDisabled = errors.New("service: chaos injection disabled (start the daemon with -chaos)")

// ShutdownGrace is how long graceful HTTP shutdown waits for in-flight
// requests before giving up (daemon and core.Serve both honour it).
const ShutdownGrace = 10 * time.Second

// Options configures a Service. Zero values pick serving-friendly defaults.
type Options struct {
	// Workers is the executor pool size: at most this many reductions run
	// concurrently. Default: GOMAXPROCS/2, at least 1.
	Workers int
	// QueueLen bounds the admission queue; submissions beyond it are shed
	// with ErrQueueFull. Default 64.
	QueueLen int
	// CacheEntries bounds the in-memory schedule cache. Default 128.
	CacheEntries int
	// CacheDir, when non-empty, persists cached schedules to disk and warms
	// the cache from it on startup.
	CacheDir string
	// MaxFinished bounds how many terminal jobs are retained for status
	// queries; older ones are forgotten. Default 1024.
	MaxFinished int
	// TraceSpans bounds the phase-level trace ring exposed at /debug/trace
	// (oldest spans are overwritten). 0 picks obs.DefaultCapacity; a
	// negative value disables tracing entirely.
	TraceSpans int
	// AllowChaos accepts job specs carrying a fault.Spec. Off by default:
	// fault injection is a test instrument, and a tenant must not be able
	// to stall or panic a shared daemon unless it was started for that.
	AllowChaos bool
	// CheckpointEvery is the default checkpoint interval (sweeps) for raw
	// multi-sweep jobs that do not set their own; 0 disables checkpointing
	// for jobs that do not ask for it. Checkpoints need CacheDir.
	CheckpointEvery int
	// Tuner resolves jobs submitted with Auto: their (engine, P, k, dist)
	// come from the measured-fastest usable cell of a persisted BENCH
	// trajectory. Build it with an engine allowlist matching what this
	// serving path can execute (native + distributed). Nil still accepts
	// Auto jobs — they get the paper's heuristic defaults.
	Tuner *rts.Tuner
	// MaxSessions bounds the resident streaming sessions (each keeps a
	// cloned schedule set and its indirection arrays in memory). Beyond it
	// the least recently used session is evicted; its next request answers
	// 410 Gone. Default 64.
	MaxSessions int
	// SessionFallbackFrac is the delta fraction (changed iterations /
	// total) above which a session re-inspects from scratch instead of
	// updating incrementally. Default DefaultFallbackFrac.
	SessionFallbackFrac float64

	// Replicate, when set, receives every IRCJ checkpoint frame written
	// for a job carrying a ClusterUID, along with the job's routing key.
	// The cluster layer ships the frame to the key's ring successor so a
	// failover replay resumes mid-job instead of recomputing from sweep 0.
	// Called off the job's hot path; best effort.
	Replicate func(uid, routingKey string, frame []byte)

	// FetchReplica, when set, is consulted for a submitted ClusterUID with
	// no local checkpoint: a replicated IRCJ frame seeds the job the same
	// way a local checkpoint file would. Returns nil when the uid is
	// unknown.
	FetchReplica func(uid string) []byte
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueLen < 1 {
		o.QueueLen = 64
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 128
	}
	if o.MaxFinished < 1 {
		o.MaxFinished = 1024
	}
	return o
}

// Service accepts reduction jobs, serves schedules from the cache, and
// executes on the native engine under bounded concurrency.
type Service struct {
	opt      Options
	cache    *Cache
	pool     *pool
	met      *metrics
	trace    *obs.Tracer
	sessions *sessionStore
	start    time.Time
	jobsDir  string // job checkpoint directory, "" when persistence is off

	draining atomic.Bool // flips /readyz during graceful shutdown

	mu       sync.Mutex
	jobs     map[string]*Job
	byUID    map[string]*Job // live jobs by ClusterUID (dedupe of replayed forwards)
	finished []string        // terminal job ids, oldest first, for pruning
	nextID   int64
	closed   bool
}

// New builds a Service, starts its worker pool, and — when a disk
// directory is configured — re-admits every job checkpoint found on disk,
// so work interrupted by a crash or SIGTERM resumes from its last
// checkpointed sweep instead of being lost.
func New(opt Options) (*Service, error) {
	opt = opt.withDefaults()
	cache, err := NewCache(opt.CacheEntries, opt.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		opt:      opt,
		cache:    cache,
		met:      newMetrics(),
		sessions: newSessionStore(opt.MaxSessions, opt.SessionFallbackFrac),
		start:    time.Now(),
		jobs:     make(map[string]*Job),
		byUID:    make(map[string]*Job),
	}
	if opt.TraceSpans >= 0 {
		s.trace = obs.New(opt.TraceSpans)
	}
	if opt.CacheDir != "" {
		s.jobsDir = filepath.Join(opt.CacheDir, ckJobsDir)
		if err := os.MkdirAll(s.jobsDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: jobs dir: %w", err)
		}
	}
	s.pool = newPool(opt.Workers, opt.QueueLen, s.runJob, s.jobPanicked)
	s.resumeCheckpointed()
	return s, nil
}

// resumeCheckpointed re-admits the checkpointed jobs left behind by the
// previous process. Each resumed job gets a fresh id (the old files are
// consumed), seeds its reduction array from the stored vector, and runs
// only the remaining sweeps.
func (s *Service) resumeCheckpointed() {
	if s.jobsDir == "" {
		return
	}
	cks := scanJobCheckpoints(s.jobsDir)
	for old := range cks {
		os.Remove(ckPath(s.jobsDir, old))
	}
	for _, ck := range cks {
		if _, err := s.submitJob(ck.Spec, ck); err != nil {
			continue // e.g. the queue is smaller than the backlog: drop
		}
		s.trace.Event("job/resume", -1, -1, ck.Sweep, -1)
	}
}

// Cache exposes the schedule cache (stats, warming).
func (s *Service) Cache() *Cache { return s.cache }

// Trace exposes the phase-level span tracer (nil when disabled). Every
// executed job records inspector, per-phase compute/copy/wait, update and
// whole-job spans into it.
func (s *Service) Trace() *obs.Tracer { return s.trace }

// Submit validates a spec and enqueues it. It returns ErrQueueFull when
// the admission queue is at capacity and ErrClosed after shutdown.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	return s.submitJob(spec, nil)
}

// submitJob admits a job, optionally seeded from a checkpoint (resume).
func (s *Service) submitJob(spec JobSpec, ck *jobCheckpoint) (*Job, error) {
	var tunedFrom string
	if spec.Auto {
		spec, tunedFrom = s.applyAuto(spec)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid job: %w", err)
	}
	if spec.Chaos != nil && !s.opt.AllowChaos {
		return nil, ErrChaosDisabled
	}
	// A replayed cluster job may already hold a replicated mid-run
	// checkpoint here (pushed by the now-dead owner): seed from it so the
	// failover resumes at the last replicated sweep instead of sweep 0. A
	// local checkpoint (restart resume) takes precedence.
	if ck == nil && spec.ClusterUID != "" && s.opt.FetchReplica != nil && spec.IsRaw() {
		if raw := s.opt.FetchReplica(spec.ClusterUID); raw != nil {
			rck, err := decodeJobCheckpoint(raw, "replica:"+spec.ClusterUID)
			if err == nil && rck.Spec.ClusterUID == spec.ClusterUID &&
				rck.Spec.RoutingKey() == spec.RoutingKey() {
				ck = rck
				s.trace.Event("job/replica-seed", -1, -1, rck.Sweep, -1)
			}
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Cluster dedupe: a retried or failed-over forward of a job already
	// live (or already finished) here attaches to the existing job rather
	// than running it twice. A failed or cancelled prior run does not
	// satisfy the replay — it is replaced.
	if spec.ClusterUID != "" {
		if prev := s.byUID[spec.ClusterUID]; prev != nil {
			switch prev.State() {
			case StateQueued, StateRunning, StateDone:
				s.mu.Unlock()
				return prev, nil
			}
		}
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	var ctx context.Context
	var cancel context.CancelFunc
	if spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j := &Job{
		ID:      id,
		Spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	j.tuned = tunedFrom
	if ck != nil {
		j.resumed = true
		j.resumeAt = ck.Sweep
		j.ckSweep = ck.Sweep
		j.seed = ck.X
	}
	s.jobs[id] = j
	if spec.ClusterUID != "" {
		s.byUID[spec.ClusterUID] = j
	}
	s.mu.Unlock()

	if ck != nil && s.jobsDir != "" {
		// Re-persist the checkpoint under the job's new id before it can
		// run: a daemon TERM'd again — even before this job leaves the
		// queue — must still find a resumable file on the next start.
		writeJobCheckpoint(ckPath(s.jobsDir, id), ck, nil)
	}

	if err := s.pool.submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		if spec.ClusterUID != "" && s.byUID[spec.ClusterUID] == j {
			delete(s.byUID, spec.ClusterUID)
		}
		s.mu.Unlock()
		cancel()
		s.met.shedJob()
		return nil, err
	}
	s.met.submittedJob()
	return j, nil
}

// applyAuto resolves an Auto spec against the configured tuner: the
// measured-fastest usable strategy for the job's workload overwrites the
// spec's (engine, P, k, dist). The service path has no schedule-license
// information at submission time, so the tuner is consulted with a nil
// license (tree-fold cells never back service picks — the pool cannot run
// them anyway) and any pick the pool cannot execute falls back to its
// native shape.
func (s *Service) applyAuto(spec JobSpec) (JobSpec, string) {
	tn := s.opt.Tuner
	if tn == nil {
		tn = rts.NewTuner(nil, rts.TunerOptions{})
	}
	kernel, class := spec.workload()
	pick := tn.Pick(kernel, class, nil)
	if pick.Engine != "native" && !(pick.Engine == "distributed" && spec.IsRaw()) {
		pick.Engine = "native"
	}
	spec.P, spec.K, spec.Dist = pick.P, pick.K, pick.Dist
	spec.Engine = ""
	if pick.Engine == "distributed" {
		spec.Engine = "distributed"
	}
	return spec, pick.Source
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job; it reports whether the id exists.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if ok {
		j.Cancel()
	}
	return ok
}

// BeginDrain flips /readyz to draining: load balancers stop routing new
// work here while in-flight jobs finish. It does not stop admissions —
// that is Close's job — so requests already in flight still land.
func (s *Service) BeginDrain() {
	s.draining.Store(true)
}

// Ready reports whether the service should receive new traffic.
func (s *Service) Ready() bool {
	if s.draining.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// jobPanicked is the pool's panic supervisor: a panic that escaped a job
// run is recovered here, the job is marked failed with the stack attached,
// and the worker goroutine survives to take the next job.
func (s *Service) jobPanicked(j *Job, v any, stack []byte) {
	s.trace.Event("job/panic", -1, -1, -1, -1)
	j.mu.Lock()
	j.stack = stack
	from := j.state
	j.mu.Unlock()
	s.finishJob(j, from, nil, "", false, fmt.Errorf("service: job panicked: %v", v))
}

// Close stops admissions, cancels outstanding jobs, and waits for workers.
func (s *Service) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		// Shutdown preemption is not user cancellation: a preempted job's
		// checkpoint must survive so the next daemon resumes it.
		j.mu.Lock()
		j.preempted = true
		j.mu.Unlock()
		j.Cancel()
	}
	// Sessions are memory-only and die with the process; marking them
	// closed makes any racing delta fail with 410 instead of mutating a
	// schedule nobody will ever serve again.
	for _, sess := range s.sessions.all() {
		sess.markClosed()
	}
	s.pool.close()
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Snapshot {
	jobs, busy, lat := s.met.snapshot()
	cs := s.cache.Stats()
	depth, peak, enqueued := s.pool.queueStats()
	return Snapshot{
		UptimeSec:        time.Since(s.start).Seconds(),
		Jobs:             jobs,
		Cache:            cs,
		CacheHitsTotal:   cs.Hits,
		CacheMissesTotal: cs.Misses,
		CacheHitRatio:    cs.HitRatio(),
		QueueDepth:       depth,
		QueuePeak:        peak,
		QueueEnqueued:    enqueued,
		Workers:          s.opt.Workers,
		WorkersBusy:      busy,
		Latency:          lat,
		Sessions:         s.sessions.metrics(),
	}
}

// runJob is the worker entry: it drives one job through its lifecycle.
func (s *Service) runJob(j *Job) {
	// A job cancelled (or expired) while queued completes immediately,
	// without charging a worker.
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, StateQueued, nil, "", false, err)
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.met.startJob()

	kind := j.Spec.Kernel
	if kind == "" {
		kind = "raw"
	}
	js := s.trace.Begin()
	result, hit, key, err := s.execute(j)
	s.trace.End("job/"+kind, -1, -1, -1, -1, js)
	j.mu.Lock()
	j.key = key
	j.cacheHit = hit
	j.mu.Unlock()
	s.finishJob(j, StateRunning, result, key, hit, err)
}

// finishJob drives a job to its terminal state and releases its context.
func (s *Service) finishJob(j *Job, from State, result []float64, key string, hit bool, err error) {
	to := StateDone
	var msg string
	switch {
	case err == nil:
	case j.ctx.Err() != nil:
		// Cancellation or deadline beat (or caused) the failure.
		to = StateCancelled
		msg = j.ctx.Err().Error()
	default:
		to = StateFailed
		msg = err.Error()
	}
	j.mu.Lock()
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		// Already terminal: a panic after completion (or a double finish)
		// must not close the done channel twice.
		j.mu.Unlock()
		return
	}
	j.state = to
	j.errMsg = msg
	if to == StateDone {
		j.result = result
		j.resultSum = HashResult(result)
	}
	j.finished = time.Now()
	total := j.finished.Sub(j.created)
	ckSweep := j.ckSweep
	preempted := j.preempted
	j.mu.Unlock()
	j.cancel() // release the context's timer resources
	close(j.done)
	if s.jobsDir != "" && ckSweep > 0 && !(preempted && to == StateCancelled) {
		// A terminal job's checkpoint is dead weight: done jobs are done,
		// and failed/cancelled jobs would only repeat their fate on resume.
		// The one exception is shutdown preemption — that checkpoint is the
		// whole point, it is how the next daemon picks the job back up.
		os.Remove(ckPath(s.jobsDir, j.ID))
	}
	s.met.finishJob(from, to, total)
	s.pruneFinished(j.ID)
}

// pruneFinished retains at most MaxFinished terminal jobs.
func (s *Service) pruneFinished(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.opt.MaxFinished {
		old := s.finished[0]
		s.finished = s.finished[1:]
		if j := s.jobs[old]; j != nil && j.Spec.ClusterUID != "" && s.byUID[j.Spec.ClusterUID] == j {
			delete(s.byUID, j.Spec.ClusterUID)
		}
		delete(s.jobs, old)
	}
}

// schedules serves the loop's schedule set from the cache, running the
// LightInspector only on a miss. Concurrent misses on the same key may both
// inspect; the duplicate Put is harmless (entries are content-determined).
func (s *Service) schedules(l *rts.Loop) ([]*inspector.Schedule, bool, string, error) {
	l.Trace = s.trace
	key := inspector.ScheduleKey(l.Cfg, l.Ind...)
	if scheds, ok := s.cache.Get(key); ok {
		s.trace.Event("cache/hit", -1, -1, -1, -1)
		return scheds, true, key, nil
	}
	s.trace.Event("cache/miss", -1, -1, -1, -1)
	scheds, err := l.Schedules()
	if err != nil {
		return nil, false, key, err
	}
	if err := s.cache.Put(key, scheds); err != nil {
		// Persistence failure degrades to in-memory-only; the job itself
		// proceeds. (Put inserts in memory before touching disk.)
		_ = err
	}
	return scheds, false, key, nil
}

// execute builds the job's loop, obtains schedules through the cache, and
// runs the reduction on the native engine under the job's context.
func (s *Service) execute(j *Job) (result []float64, hit bool, key string, err error) {
	spec := &j.Spec
	dist, err := spec.dist()
	if err != nil {
		return nil, false, "", err
	}
	steps := spec.steps()

	if spec.IsRaw() {
		return s.executeRaw(j, dist, steps)
	}

	return s.executeNamed(j, dist, steps)
}

// executeRaw runs a raw reduction job: engine selection (native or the
// hardened distributed engine), per-job chaos injection, and — for
// multi-sweep jobs on a disk-backed service — periodic checkpoints of the
// reduction array and sweep counter, so a daemon restart resumes the job
// instead of recomputing it.
func (s *Service) executeRaw(j *Job, dist inspector.Dist, steps int) (result []float64, hit bool, key string, err error) {
	spec := &j.Spec
	if len(spec.Loops) > 0 {
		return s.executeRawMulti(j, dist, steps)
	}
	l := &rts.Loop{
		Cfg: inspector.Config{
			P: spec.P, K: spec.K,
			NumIters: spec.NumIters,
			NumElems: spec.NumElems,
			Dist:     dist,
		},
		Mode: rts.Reduce,
		Ind:  spec.Ind,
	}
	scheds, hit, key, err := s.schedules(l)
	if err != nil {
		return nil, hit, key, err
	}

	var inj *fault.Injector
	if spec.Chaos != nil {
		inj = fault.New(*spec.Chaos)
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = s.opt.CheckpointEvery
	}
	ckOn := s.jobsDir != "" && every > 0 && steps > 1

	// Resume state installed by submitJob for checkpointed jobs.
	j.mu.Lock()
	done, seed := j.resumeAt, j.seed
	j.mu.Unlock()
	if done >= steps || (seed != nil && len(seed) != l.Cfg.NumElems) {
		done, seed = 0, nil
	}

	// Cluster jobs replicate every checkpoint frame to the routing key's
	// ring successor (via the Replicate hook), so the failover target can
	// resume mid-job even though this node's disk dies with this node.
	var routeKey string
	if spec.ClusterUID != "" && s.opt.Replicate != nil {
		routeKey = spec.RoutingKey()
	}
	writeCk := func(sweep int, x []float64) {
		cs := s.trace.Begin()
		path := ckPath(s.jobsDir, j.ID)
		werr := writeJobCheckpoint(path, &jobCheckpoint{Spec: *spec, Sweep: sweep, X: x}, inj)
		s.trace.End(obs.SpanCheckpoint, -1, -1, sweep, -1, cs)
		if werr != nil {
			// A failed checkpoint write loses a resume point, nothing more:
			// the job itself is unharmed.
			s.trace.Event("checkpoint/fail", -1, -1, sweep, -1)
			return
		}
		j.mu.Lock()
		j.ckSweep = sweep
		j.mu.Unlock()
		if routeKey != "" {
			if frame, rerr := os.ReadFile(path); rerr == nil {
				s.opt.Replicate(spec.ClusterUID, routeKey, frame)
			}
		}
	}

	if spec.distributed() {
		d, err := rts.NewDistributedFrom(l, scheds)
		if err != nil {
			return nil, hit, key, err
		}
		d.Contribs = spec.contrib()
		d.Trace = s.trace
		d.Inject = inj
		if inj != nil {
			// Chaos jobs are soak instruments: a dropped payload should cost
			// milliseconds, not the conservative default watchdog, or the
			// soak spends its whole budget waiting on injected faults.
			d.Watchdog = 25 * time.Millisecond
		}
		if seed != nil {
			if err := d.Seed(seed); err != nil {
				return nil, hit, key, err
			}
		}
		if ckOn {
			base := done
			d.CheckpointEvery = every
			d.Checkpoint = func(sweep int, x []float64) error {
				writeCk(base+sweep, x)
				return nil
			}
		}
		out, err := d.RunContext(j.ctx, steps-done)
		if err != nil {
			var pe *rts.PanicError
			if errors.As(err, &pe) {
				j.mu.Lock()
				j.stack = pe.Stack
				j.mu.Unlock()
			}
			return nil, hit, key, err
		}
		return out, hit, key, nil
	}

	// Native engine. Chaos here is limited to kernel panics (payload
	// faults need a wire; the native engine's token rotation has none).
	// The panic is caught in the contribution wrapper itself — a panic on
	// an engine-internal goroutine would crash the process — and turned
	// into a cancelled run plus a structured job failure with the stack.
	n, err := rts.NewNativeFrom(l, scheds)
	if err != nil {
		return nil, hit, key, err
	}
	contrib := spec.contrib()
	runCtx := j.ctx
	var pmu sync.Mutex
	var panicVal any
	var panicStack []byte
	if inj != nil {
		ctx2, cancel := context.WithCancel(j.ctx)
		defer cancel()
		runCtx = ctx2
		base := contrib
		contrib = func(p, i int, out []float64) {
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if panicVal == nil {
						panicVal, panicStack = r, debug.Stack()
						cancel()
					}
					pmu.Unlock()
					for c := range out {
						out[c] = 0
					}
				}
			}()
			inj.KernelPanic(p, i)
			base(p, i, out)
		}
	}
	n.Contribs = contrib
	if seed != nil {
		copy(n.X, seed)
	}
	for done < steps {
		chunk := steps - done
		if ckOn && chunk > every {
			chunk = every
		}
		runErr := n.RunContext(runCtx, chunk)
		pmu.Lock()
		pv, ps := panicVal, panicStack
		pmu.Unlock()
		if pv != nil {
			j.mu.Lock()
			j.stack = ps
			j.mu.Unlock()
			return nil, hit, key, fmt.Errorf("service: kernel panicked: %v", pv)
		}
		if runErr != nil {
			return nil, hit, key, runErr
		}
		done += chunk
		if ckOn && done < steps {
			writeCk(done, n.X)
		}
	}
	return n.X, hit, key, nil
}

// executeRawMulti runs a raw multi-loop program: the loops of every sweep
// execute in order against one shared reduction array, so loop l+1 sees
// loop l's contributions of the same sweep — the way consecutive
// fissioned loops chain in a compiled program. Schedule sets are
// content-addressed: loops whose effective indirection contents coincide
// share one set (inspected once, found again in the job-local slot map or
// the service cache), which is the serving-side consumption of the
// paper's amortization argument — inspection cost is paid per distinct
// traversal, not per loop. Validation has already pinned this path to the
// native engine with no chaos and no checkpointing.
func (s *Service) executeRawMulti(j *Job, dist inspector.Dist, steps int) (result []float64, hit bool, key string, err error) {
	spec := &j.Spec
	cfg := inspector.Config{
		P: spec.P, K: spec.K,
		NumIters: spec.NumIters,
		NumElems: spec.NumElems,
		Dist:     dist,
	}
	x := make([]float64, spec.NumElems)
	slots := make(map[string][]*inspector.Schedule)
	natives := make([]*rts.Native, len(spec.Loops))
	for li := range spec.Loops {
		ind := spec.loopInd(li)
		l := &rts.Loop{Cfg: cfg, Mode: rts.Reduce, Ind: ind, Trace: s.trace}
		k := inspector.ScheduleKey(cfg, ind...)
		scheds, ok := slots[k]
		if ok {
			// A previous loop of this job already inspected this exact
			// traversal; execute against its schedules.
			s.trace.Event("job/reuse", -1, -1, li, -1)
		} else {
			var h bool
			scheds, h, _, err = s.schedules(l)
			if err != nil {
				return nil, hit, key, err
			}
			hit = hit || h
			slots[k] = scheds
		}
		if key == "" {
			key = k
		}
		n, err := rts.NewNativeFrom(l, scheds)
		if err != nil {
			return nil, hit, key, err
		}
		n.Contribs = spec.contribFor(li)
		n.X = x
		natives[li] = n
	}
	for step := 0; step < steps; step++ {
		for _, n := range natives {
			if err := n.RunContext(j.ctx, 1); err != nil {
				return nil, hit, key, err
			}
		}
	}
	return x, hit, key, nil
}

// executeNamed runs a named-kernel job on the native engine.
func (s *Service) executeNamed(j *Job, dist inspector.Dist, steps int) (result []float64, hit bool, key string, err error) {
	spec := &j.Spec
	switch spec.Kernel {
	case "mvm":
		class := sparse.ClassS
		switch strings.ToUpper(spec.Dataset) {
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		}
		mv := kernels.NewMVM(sparse.Generate(class, uint64(spec.Seed)))
		l := mv.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, err := mv.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return n.X, hit, key, nil
	case "euler":
		nodes, edges := mesh.Paper2K()
		if strings.ToLower(spec.Dataset) == "10k" {
			nodes, edges = mesh.Paper10K()
		}
		eu := kernels.NewEuler(mesh.Generate(nodes, edges, spec.Seed), spec.Seed)
		l := eu.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, q, err := eu.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return q, hit, key, nil
	case "moldyn":
		var sys *moldyn.System
		if strings.ToLower(spec.Dataset) == "10k" {
			sys = moldyn.Paper10K(spec.Seed)
		} else {
			sys = moldyn.Paper2K(spec.Seed)
		}
		md := kernels.NewMoldyn(sys)
		l := md.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, pos, _, err := md.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return pos, hit, key, nil
	default:
		return nil, false, "", fmt.Errorf("service: unknown kernel %q", spec.Kernel)
	}
}
