// Package service is the reduction-as-a-service layer: a job-oriented
// server over the paper's execution strategy. It turns the paper's
// amortization economics — LightInspector runs once, its schedules serve
// ~100 executor iterations, and the communication schedule is independent
// of the values flowing through — into a long-running daemon that caches
// schedules across *requests*: any job arriving with indirection arrays
// and strategy already seen reuses the cached P-processor schedule set and
// goes straight to execution on the native engine.
//
// The package has four parts: the schedule Cache (LRU + optional disk
// persistence via inspector/serialize), the executor pool (bounded
// concurrency, bounded admission queue, per-job context cancellation
// plumbed into the rts native run loops), the HTTP API (http.go, exposed by
// cmd/irredd), and the client (subpackage client) used by tests and
// irredrun -server.
package service

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/obs"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// ShutdownGrace is how long graceful HTTP shutdown waits for in-flight
// requests before giving up (daemon and core.Serve both honour it).
const ShutdownGrace = 10 * time.Second

// Options configures a Service. Zero values pick serving-friendly defaults.
type Options struct {
	// Workers is the executor pool size: at most this many reductions run
	// concurrently. Default: GOMAXPROCS/2, at least 1.
	Workers int
	// QueueLen bounds the admission queue; submissions beyond it are shed
	// with ErrQueueFull. Default 64.
	QueueLen int
	// CacheEntries bounds the in-memory schedule cache. Default 128.
	CacheEntries int
	// CacheDir, when non-empty, persists cached schedules to disk and warms
	// the cache from it on startup.
	CacheDir string
	// MaxFinished bounds how many terminal jobs are retained for status
	// queries; older ones are forgotten. Default 1024.
	MaxFinished int
	// TraceSpans bounds the phase-level trace ring exposed at /debug/trace
	// (oldest spans are overwritten). 0 picks obs.DefaultCapacity; a
	// negative value disables tracing entirely.
	TraceSpans int
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0) / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.QueueLen < 1 {
		o.QueueLen = 64
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 128
	}
	if o.MaxFinished < 1 {
		o.MaxFinished = 1024
	}
	return o
}

// Service accepts reduction jobs, serves schedules from the cache, and
// executes on the native engine under bounded concurrency.
type Service struct {
	opt   Options
	cache *Cache
	pool  *pool
	met   *metrics
	trace *obs.Tracer
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job ids, oldest first, for pruning
	nextID   int64
	closed   bool
}

// New builds a Service and starts its worker pool.
func New(opt Options) (*Service, error) {
	opt = opt.withDefaults()
	cache, err := NewCache(opt.CacheEntries, opt.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		opt:   opt,
		cache: cache,
		met:   newMetrics(),
		start: time.Now(),
		jobs:  make(map[string]*Job),
	}
	if opt.TraceSpans >= 0 {
		s.trace = obs.New(opt.TraceSpans)
	}
	s.pool = newPool(opt.Workers, opt.QueueLen, s.runJob)
	return s, nil
}

// Cache exposes the schedule cache (stats, warming).
func (s *Service) Cache() *Cache { return s.cache }

// Trace exposes the phase-level span tracer (nil when disabled). Every
// executed job records inspector, per-phase compute/copy/wait, update and
// whole-job spans into it.
func (s *Service) Trace() *obs.Tracer { return s.trace }

// Submit validates a spec and enqueues it. It returns ErrQueueFull when
// the admission queue is at capacity and ErrClosed after shutdown.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid job: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	var ctx context.Context
	var cancel context.CancelFunc
	if spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	j := &Job{
		ID:      id,
		Spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.pool.submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		cancel()
		s.met.shedJob()
		return nil, err
	}
	s.met.submittedJob()
	return j, nil
}

// Job looks up a job by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job; it reports whether the id exists.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if ok {
		j.Cancel()
	}
	return ok
}

// Close stops admissions, cancels outstanding jobs, and waits for workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.pool.close()
}

// Metrics snapshots the service counters.
func (s *Service) Metrics() Snapshot {
	jobs, busy, lat := s.met.snapshot()
	cs := s.cache.Stats()
	return Snapshot{
		UptimeSec:     time.Since(s.start).Seconds(),
		Jobs:          jobs,
		Cache:         cs,
		CacheHitRatio: cs.HitRatio(),
		QueueDepth:    s.pool.depth(),
		Workers:       s.opt.Workers,
		WorkersBusy:   busy,
		Latency:       lat,
	}
}

// runJob is the worker entry: it drives one job through its lifecycle.
func (s *Service) runJob(j *Job) {
	// A job cancelled (or expired) while queued completes immediately,
	// without charging a worker.
	if err := j.ctx.Err(); err != nil {
		s.finishJob(j, StateQueued, nil, "", false, err)
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.met.startJob()

	kind := j.Spec.Kernel
	if kind == "" {
		kind = "raw"
	}
	js := s.trace.Begin()
	result, hit, key, err := s.execute(j)
	s.trace.End("job/"+kind, -1, -1, -1, -1, js)
	j.mu.Lock()
	j.key = key
	j.cacheHit = hit
	j.mu.Unlock()
	s.finishJob(j, StateRunning, result, key, hit, err)
}

// finishJob drives a job to its terminal state and releases its context.
func (s *Service) finishJob(j *Job, from State, result []float64, key string, hit bool, err error) {
	to := StateDone
	var msg string
	switch {
	case err == nil:
	case j.ctx.Err() != nil:
		// Cancellation or deadline beat (or caused) the failure.
		to = StateCancelled
		msg = j.ctx.Err().Error()
	default:
		to = StateFailed
		msg = err.Error()
	}
	j.mu.Lock()
	j.state = to
	j.errMsg = msg
	if to == StateDone {
		j.result = result
		j.resultSum = HashResult(result)
	}
	j.finished = time.Now()
	total := j.finished.Sub(j.created)
	j.mu.Unlock()
	j.cancel() // release the context's timer resources
	close(j.done)
	s.met.finishJob(from, to, total)
	s.pruneFinished(j.ID)
}

// pruneFinished retains at most MaxFinished terminal jobs.
func (s *Service) pruneFinished(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.opt.MaxFinished {
		old := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, old)
	}
}

// schedules serves the loop's schedule set from the cache, running the
// LightInspector only on a miss. Concurrent misses on the same key may both
// inspect; the duplicate Put is harmless (entries are content-determined).
func (s *Service) schedules(l *rts.Loop) ([]*inspector.Schedule, bool, string, error) {
	l.Trace = s.trace
	key := inspector.ScheduleKey(l.Cfg, l.Ind...)
	if scheds, ok := s.cache.Get(key); ok {
		s.trace.Event("cache/hit", -1, -1, -1, -1)
		return scheds, true, key, nil
	}
	s.trace.Event("cache/miss", -1, -1, -1, -1)
	scheds, err := l.Schedules()
	if err != nil {
		return nil, false, key, err
	}
	if err := s.cache.Put(key, scheds); err != nil {
		// Persistence failure degrades to in-memory-only; the job itself
		// proceeds. (Put inserts in memory before touching disk.)
		_ = err
	}
	return scheds, false, key, nil
}

// execute builds the job's loop, obtains schedules through the cache, and
// runs the reduction on the native engine under the job's context.
func (s *Service) execute(j *Job) (result []float64, hit bool, key string, err error) {
	spec := &j.Spec
	dist, err := spec.dist()
	if err != nil {
		return nil, false, "", err
	}
	steps := spec.steps()

	if spec.IsRaw() {
		l := &rts.Loop{
			Cfg: inspector.Config{
				P: spec.P, K: spec.K,
				NumIters: spec.NumIters,
				NumElems: spec.NumElems,
				Dist:     dist,
			},
			Mode: rts.Reduce,
			Ind:  spec.Ind,
		}
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, err := rts.NewNativeFrom(l, scheds)
		if err != nil {
			return nil, hit, key, err
		}
		n.Contribs = spec.contrib()
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return n.X, hit, key, nil
	}

	switch spec.Kernel {
	case "mvm":
		class := sparse.ClassS
		switch strings.ToUpper(spec.Dataset) {
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		}
		mv := kernels.NewMVM(sparse.Generate(class, uint64(spec.Seed)))
		l := mv.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, err := mv.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return n.X, hit, key, nil
	case "euler":
		nodes, edges := mesh.Paper2K()
		if strings.ToLower(spec.Dataset) == "10k" {
			nodes, edges = mesh.Paper10K()
		}
		eu := kernels.NewEuler(mesh.Generate(nodes, edges, spec.Seed), spec.Seed)
		l := eu.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, q, err := eu.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return q, hit, key, nil
	case "moldyn":
		var sys *moldyn.System
		if strings.ToLower(spec.Dataset) == "10k" {
			sys = moldyn.Paper10K(spec.Seed)
		} else {
			sys = moldyn.Paper2K(spec.Seed)
		}
		md := kernels.NewMoldyn(sys)
		l := md.Loop(spec.P, spec.K, dist)
		scheds, hit, key, err := s.schedules(l)
		if err != nil {
			return nil, hit, key, err
		}
		n, pos, _, err := md.NewNativeFrom(scheds, spec.P, spec.K, dist)
		if err != nil {
			return nil, hit, key, err
		}
		n.Trace = s.trace
		if err := n.RunContext(j.ctx, steps); err != nil {
			return nil, hit, key, err
		}
		return pos, hit, key, nil
	default:
		return nil, false, "", fmt.Errorf("service: unknown kernel %q", spec.Kernel)
	}
}
