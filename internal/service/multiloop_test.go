package service

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"irred/internal/fault"
)

// multiLoopSpec builds a CG-style two-loop program: both loops traverse
// the base indirection (loop 1 inherits everything, loop 2 swaps in a
// "ones" contribution), so one inspection must serve both. Contributions
// are integral, so the parallel result is bitwise-comparable.
func multiLoopSpec(seed int64, p, k, iters, elems, steps int) JobSpec {
	spec := rawSpec(seed, p, k, iters, elems, steps)
	spec.Loops = []LoopSpec{{}, {Contrib: &ContribSpec{Kind: "ones"}}}
	return spec
}

// TestMultiLoopJobMatchesOracle is the executor contract: a multi-loop
// job's loops chain through one shared reduction array in loop order, and
// the result is bitwise-equal to the sequential multi-loop oracle.
func TestMultiLoopJobMatchesOracle(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	spec := multiLoopSpec(11, 4, 2, 2000, 193, 3)
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	if len(st.Result) != len(want) {
		t.Fatalf("result has %d elements, want %d", len(st.Result), len(want))
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("result[%d] = %g, want %g", e, st.Result[e], want[e])
		}
	}
	if st.ResultSHA256 != HashResult(want) {
		t.Fatal("result hash does not match the oracle")
	}
	// The amortization claim itself: two loops over the same indirection
	// contents pay exactly one inspection (one cache miss, zero hits —
	// the second loop is served from the job-local slot map without even
	// touching the cache).
	if cs := s.Cache().Stats(); cs.Misses != 1 {
		t.Fatalf("two identical-traversal loops paid %d inspections, want 1 (stats %+v)", cs.Misses, cs)
	}
}

// TestMultiLoopJobDistinctTraversals: a loop with its own indirection
// contents pays its own inspection — content-addressing, not loop
// counting, decides what is shared.
func TestMultiLoopJobDistinctTraversals(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	spec := rawSpec(12, 2, 2, 1500, 128, 2)
	other := rawSpec(13, 2, 2, 1500, 128, 2) // different seed, different contents
	spec.Loops = []LoopSpec{
		{},
		{Ind: other.Ind, Contrib: other.Contrib},
		{}, // traverses the base arrays again: must reuse loop 0's schedules
	}
	want, err := spec.SequentialRaw()
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	for e := range want {
		if st.Result[e] != want[e] {
			t.Fatalf("result[%d] = %g, want %g", e, st.Result[e], want[e])
		}
	}
	if cs := s.Cache().Stats(); cs.Misses != 2 {
		t.Fatalf("three loops over two distinct traversals paid %d inspections, want 2 (stats %+v)", cs.Misses, cs)
	}
}

// TestMultiLoopValidation pins the multi-loop admission rules.
func TestMultiLoopValidation(t *testing.T) {
	base := func() JobSpec { return multiLoopSpec(5, 2, 1, 100, 32, 1) }
	cases := []struct {
		name    string
		mutate  func(*JobSpec)
		wantSub string
	}{
		{"distributed engine", func(sp *JobSpec) { sp.Engine = "distributed" }, "native engine only"},
		{"checkpointing", func(sp *JobSpec) { sp.CheckpointEvery = 2 }, "do not checkpoint"},
		{"too many loops", func(sp *JobSpec) { sp.Loops = make([]LoopSpec, 9) }, "max 8"},
		{"pair contrib arity", func(sp *JobSpec) {
			sp.Loops[1] = LoopSpec{
				Ind:     sp.Ind[:1],
				Contrib: &ContribSpec{Kind: "pair", Weights: make([]float64, sp.NumIters)},
			}
		}, `loop 1: contrib "pair" needs exactly 2`},
		{"short per-loop ind", func(sp *JobSpec) {
			sp.Loops[0] = LoopSpec{Ind: [][]int32{{0, 1}}}
		}, "loop 0: ind[0] has 2 entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := base()
			tc.mutate(&sp)
			err := sp.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
	sp := base()
	if err := sp.Validate(); err != nil {
		t.Fatalf("well-formed multi-loop spec rejected: %v", err)
	}
}

// TestMultiLoopSession: a multi-loop session runs every loop of a sweep
// against the one session-resident schedule clone, both at open and after
// a delta — schedule maintenance is paid once per delta, not once per
// loop, and the results stay bitwise-equal to the multi-loop oracle.
func TestMultiLoopSession(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	rng := rand.New(rand.NewSource(21))
	spec := multiLoopSpec(21, 2, 2, 600, 97, 2)

	mirror := spec
	mirror.Ind = make([][]int32, len(spec.Ind))
	for r := range spec.Ind {
		mirror.Ind[r] = append([]int32(nil), spec.Ind[r]...)
	}

	st, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	check := func(st *SessionStatus) {
		t.Helper()
		want, err := mirror.SequentialRaw()
		if err != nil {
			t.Fatal(err)
		}
		for e := range want {
			if st.Result[e] != want[e] {
				t.Fatalf("result[%d] = %g, want %g", e, st.Result[e], want[e])
			}
		}
	}
	check(st)

	d := mkDelta(rng, &mirror, 9)
	applyLocal(&mirror, d)
	st, err = s.ApplyDelta(context.Background(), st.ID, d, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.LastIncremental || st.Incremental != 1 {
		t.Fatalf("sparse delta on a multi-loop session took the full path: %+v", st)
	}
	check(st)
}

// TestMultiLoopSessionRejectsPrivateInd: session loops inherit the
// resident arrays; a loop with private indirection is a job shape.
func TestMultiLoopSessionRejectsPrivateInd(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	spec := multiLoopSpec(23, 2, 1, 200, 64, 1)
	spec.Loops[1].Ind = spec.Ind
	_, err := s.OpenSession(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "inherit the resident arrays") {
		t.Fatalf("OpenSession = %v, want per-loop ind rejection", err)
	}
}

// TestMultiLoopChaosRejected: the multi-loop path has no chaos support,
// and the validation error must say so rather than silently ignoring the
// spec.
func TestMultiLoopChaosRejected(t *testing.T) {
	sp := multiLoopSpec(7, 2, 1, 100, 32, 1)
	sp.Chaos = &fault.Spec{Seed: 1, DropRate: 0.1}
	err := sp.Validate()
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("Validate() = %v, want chaos rejection", err)
	}
}
