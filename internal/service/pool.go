package service

import (
	"errors"
	"runtime/debug"
	"sync"
)

// ErrQueueFull is returned when the admission queue is at capacity: the
// service sheds load with an explicit error (HTTP 429) instead of letting
// latency collapse under unbounded queueing.
var ErrQueueFull = errors.New("service: admission queue full")

// ErrClosed is returned for submissions after shutdown began.
var ErrClosed = errors.New("service: closed")

// pool runs jobs on a fixed set of worker goroutines behind a bounded
// admission queue. Submission never blocks: a full queue is a shed, not a
// wait. Each worker owns one rts native run at a time, so at most Workers
// reductions execute concurrently regardless of offered load.
//
// Workers are supervised: a panic escaping run is recovered and reported
// through onPanic, and the worker goroutine survives to take the next job
// — a poisoned kernel costs one job, never a slice of pool capacity.
type pool struct {
	queue   chan *Job
	run     func(*Job)
	onPanic func(j *Job, v any, stack []byte)

	mu       sync.Mutex
	closed   bool
	enqueued int64 // cumulative accepted submissions
	peak     int   // high-water mark of the queue depth
	wg       sync.WaitGroup
}

func newPool(workers, queueLen int, run func(*Job), onPanic func(j *Job, v any, stack []byte)) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueLen < 1 {
		queueLen = 1
	}
	p := &pool{queue: make(chan *Job, queueLen), run: run, onPanic: onPanic}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				p.runOne(j)
			}
		}()
	}
	return p
}

// runOne executes one job under the panic supervisor.
func (p *pool) runOne(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			if p.onPanic != nil {
				p.onPanic(j, r, debug.Stack())
			}
		}
	}()
	p.run(j)
}

// submit enqueues a job or sheds it. The lock is held across the send so
// close cannot race the channel close against a send.
func (p *pool) submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queue <- j:
		p.enqueued++
		if d := len(p.queue); d > p.peak {
			p.peak = d
		}
		return nil
	default:
		return ErrQueueFull
	}
}

// depth reports the number of queued-but-not-yet-running jobs.
func (p *pool) depth() int { return len(p.queue) }

// queueStats reports the instantaneous depth plus the cumulative counters:
// the high-water mark of the queue and the total accepted submissions.
// Peak is sampled at submit time, so it reflects the depth the moment each
// job landed (a worker may already be draining it).
func (p *pool) queueStats() (depth, peak int, enqueued int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.peak, p.enqueued
}

// close stops admissions, lets workers drain the queue (cancelled jobs
// complete immediately), and waits for them to exit.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
