// Package analysis implements the compiler analysis of Section 4 of the
// paper: extraction of reduction array sections and indirection array
// sections from irregular loops, classification of statements, legality
// checks (single level of indirection, indirection in a single dimension,
// reductions only through associative/commutative updates), and the
// construction of reference groups (Definition 1) that drive loop fission.
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"irred/internal/algebra"
	"irred/internal/lang"
)

// IndRef identifies one indirection array section: the paper's
// IA(1, num_edges, 1, col) in triplet notation — a whole column of a
// (possibly 2-D) integer array swept by the loop index.
type IndRef struct {
	Array string
	Col   int // second-subscript literal; -1 for 1-D indirection arrays
}

func (r IndRef) String() string {
	if r.Col < 0 {
		return r.Array + "(*)"
	}
	return fmt.Sprintf("%s(*,%d)", r.Array, r.Col)
}

// Triplet renders the section in the paper's triplet notation over the
// given loop extent.
func (r IndRef) Triplet(extent string) string {
	if r.Col < 0 {
		return fmt.Sprintf("%s[0:%s:1]", r.Array, extent)
	}
	return fmt.Sprintf("%s[0:%s:1, %d]", r.Array, extent, r.Col)
}

// Reduction is one irregular reduction statement: Array[Ind] op= RHS.
// Kind is the fold operator: Add for += / -= (Negate distinguishes),
// Mul/Min/Max for the fold-assignment sugar, and Custom for general
// self-updates (`x[ia[i]] = f(x[ia[i]], contrib)`) normalized by
// ExtractUpdate — for those, Combine is the two-variable combine tree
// over "a"/"b" and RHS is the extracted per-iteration contribution.
type Reduction struct {
	StmtIndex int // position in the loop body
	Array     string
	Ind       IndRef
	Negate    bool // true for -= (Kind == Add only)
	RHS       lang.Expr
	Kind      algebra.Kind
	Combine   lang.Expr // Custom only
}

// Op is the reduction's fold operator in executable form.
func (r *Reduction) Op() algebra.Op {
	return algebra.Op{Kind: r.Kind, Expr: r.Combine}
}

// OpString renders the reduction's assignment operator for listings.
func (r *Reduction) OpString() string {
	switch r.Kind {
	case algebra.Add:
		if r.Negate {
			return "-="
		}
		return "+="
	case algebra.Mul:
		return "*="
	case algebra.Min:
		return "min="
	case algebra.Max:
		return "max="
	default:
		return "=" // general update; RHS shown is the contribution
	}
}

// Read is an irregular read on the right-hand side: Array[Ind] consumed by
// some statement (the paper's C(IA(i,1))) — data that must be available
// wherever the iteration executes.
type Read struct {
	Array string
	Ind   IndRef
}

// RefGroup is a reference group per Definition 1: the set of reduction
// array sections accessed through the same set of indirection array
// sections. One LightInspector serves one group.
type RefGroup struct {
	Inds   []IndRef // sorted set of indirection sections
	Arrays []string // reduction arrays in the group (sorted)
	Stmts  []int    // body statement indices of the group's reductions
}

// Key canonically identifies the indirection set.
func (g *RefGroup) Key() string {
	parts := make([]string, len(g.Inds))
	for i, r := range g.Inds {
		parts[i] = r.String()
	}
	return strings.Join(parts, "+")
}

// LoopInfo is the analysis result for one loop.
type LoopInfo struct {
	Loop       *lang.Loop
	Extent     string      // loop extent rendered (hi expression)
	Reductions []Reduction // irregular reduction statements, body order
	Reads      []Read      // distinct irregular RHS reads
	IterReads  []string    // distinct arrays read at [i] (iteration-aligned)
	ScalarDefs []int       // body indices of scalar definitions
	RegWrites  []int       // body indices of regular (a[i]) writes
	Groups     []RefGroup  // reference groups, deterministic order
}

// NeedsFission reports whether the loop updates more than one reference
// group and so must be split before code generation.
func (li *LoopInfo) NeedsFission() bool { return len(li.Groups) > 1 }

// Result is the whole-program analysis.
type Result struct {
	Program *lang.Program
	Loops   []*LoopInfo
}

// Analyze performs the Section 4 analysis on every loop of the program.
func Analyze(prog *lang.Program) (*Result, error) {
	res := &Result{Program: prog}
	for _, l := range prog.Loops {
		li, err := analyzeLoop(prog, l)
		if err != nil {
			return nil, err
		}
		res.Loops = append(res.Loops, li)
	}
	return res, nil
}

func analyzeLoop(prog *lang.Program, l *lang.Loop) (*LoopInfo, error) {
	li := &LoopInfo{Loop: l, Extent: l.Hi.String()}
	scalars := map[string]bool{}
	readSet := map[Read]bool{}
	iterReadSet := map[string]bool{}
	// Accumulator occurrences of general self-updates: exempt from the
	// read-set and the loop-carried-dependence check below, because they
	// are the reduction itself, not an independent read.
	accNodes := map[lang.Expr]bool{}
	// varying reports whether an expression depends on the iteration —
	// via the loop variable or a loop-local scalar (scalar defs precede
	// their uses, so the set built so far is complete at each use).
	varying := func(e lang.Expr) bool {
		found := false
		lang.Walk(e, func(x lang.Expr) {
			if id, ok := x.(*lang.Ident); ok && (id.Name == l.Var || scalars[id.Name]) {
				found = true
			}
		})
		return found
	}

	for idx, st := range l.Body {
		switch {
		case st.Scalar != "":
			if prog.Array(st.Scalar) != nil {
				return nil, fmt.Errorf("irl:%s: %q is an array; subscript required", st.Pos, st.Scalar)
			}
			if st.Op != lang.OpSet {
				return nil, fmt.Errorf("irl:%s: scalar %q must use '='", st.Pos, st.Scalar)
			}
			scalars[st.Scalar] = true
			li.ScalarDefs = append(li.ScalarDefs, idx)
		default:
			kind, ind, err := classifyIndex(prog, l, st.Target)
			if err != nil {
				return nil, err
			}
			switch kind {
			case idxRegular:
				li.RegWrites = append(li.RegWrites, idx)
			case idxIndirect:
				red := Reduction{StmtIndex: idx, Array: st.Target.Array, Ind: ind, RHS: st.RHS}
				switch st.Op {
				case lang.OpAdd, lang.OpSub:
					red.Kind, red.Negate = algebra.Add, st.Op == lang.OpSub
				case lang.OpMul:
					red.Kind = algebra.Mul
				case lang.OpMin:
					red.Kind = algebra.Min
				case lang.OpMax:
					red.Kind = algebra.Max
				case lang.OpSet:
					// A plain `=` through indirection is accepted only as a
					// self-update in accumulator-fold form; whether any
					// schedule is legal for it is the legality pass's call.
					upd, err := algebra.ExtractUpdate(st.Target, st.RHS, varying)
					if errors.Is(err, algebra.ErrNoAcc) {
						return nil, fmt.Errorf("irl:%s: irregular write to %q must be a reduction (+=, -=, *=, min=, max=) or a self-update reading the target element", st.Pos, st.Target.Array)
					}
					if err != nil {
						return nil, fmt.Errorf("irl:%s: irregular update of %q: %v", st.Pos, st.Target.Array, err)
					}
					red.Kind, red.Negate = upd.Op.Kind, upd.Negate
					red.RHS, red.Combine = upd.Contrib, upd.Op.Expr
					for _, a := range upd.Acc {
						accNodes[a] = true
					}
				}
				li.Reductions = append(li.Reductions, red)
			}
		}
		// Scan the RHS for irregular reads, iteration-aligned reads, and
		// legality violations.
		if err := scanRHS(prog, l, st.RHS, readSet, iterReadSet, accNodes); err != nil {
			return nil, err
		}
	}

	if len(li.Reductions) == 0 && len(li.RegWrites) == 0 {
		return nil, fmt.Errorf("irl:%s: loop has no array updates", l.Pos)
	}

	// No loop-carried dependence beyond the reductions: the RHS of any
	// statement must not read an array that the loop reduces into.
	reduced := map[string]bool{}
	for _, r := range li.Reductions {
		reduced[r.Array] = true
	}
	for _, st := range l.Body {
		var bad *lang.IndexExpr
		lang.Walk(st.RHS, func(e lang.Expr) {
			if accNodes[e] {
				return
			}
			if ix, ok := e.(*lang.IndexExpr); ok && reduced[ix.Array] && bad == nil {
				bad = ix
			}
		})
		if bad != nil {
			return nil, fmt.Errorf("irl:%s: %q is a reduction array and may not be read in the loop", bad.Pos, bad.Array)
		}
	}

	for r := range readSet {
		li.Reads = append(li.Reads, r)
	}
	sort.Slice(li.Reads, func(a, b int) bool {
		if li.Reads[a].Array != li.Reads[b].Array {
			return li.Reads[a].Array < li.Reads[b].Array
		}
		return li.Reads[a].Ind.String() < li.Reads[b].Ind.String()
	})
	for a := range iterReadSet {
		li.IterReads = append(li.IterReads, a)
	}
	sort.Strings(li.IterReads)

	li.Groups = buildGroups(li.Reductions)

	// One combine operator per reference group: a group rotates as one
	// unit, so its statements must agree on the fold. (+= and -= agree —
	// both are additive.)
	for gi := range li.Groups {
		g := &li.Groups[gi]
		var first *Reduction
		for ri := range li.Reductions {
			r := &li.Reductions[ri]
			inGroup := false
			for _, si := range g.Stmts {
				if r.StmtIndex == si {
					inGroup = true
					break
				}
			}
			if !inGroup {
				continue
			}
			if first == nil {
				first = r
				continue
			}
			if r.Kind != first.Kind || combineKey(r) != combineKey(first) {
				return nil, fmt.Errorf("irl:%s: reference group {%s} mixes fold operators %q and %q; one combine per rotated group",
					l.Body[r.StmtIndex].Pos, g.Key(), first.Op(), r.Op())
			}
		}
	}
	return li, nil
}

// combineKey canonicalizes a reduction's combine for equality checks.
func combineKey(r *Reduction) string {
	if r.Combine != nil {
		return r.Combine.String()
	}
	return r.Kind.String()
}

type idxKind int

const (
	idxRegular  idxKind = iota // a[i] or a[i, const]
	idxIndirect                // a[ind[i]] or a[ind[i, const]]
)

// classifyIndex validates an array subscript and classifies it. It enforces
// the paper's restrictions: at most one level of indirection, and
// indirection in at most one dimension.
func classifyIndex(prog *lang.Program, l *lang.Loop, ix *lang.IndexExpr) (idxKind, IndRef, error) {
	decl := prog.Array(ix.Array)
	if decl == nil {
		return 0, IndRef{}, fmt.Errorf("irl:%s: undeclared array %q", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return 0, IndRef{}, fmt.Errorf("irl:%s: array %q has %d dimensions, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	var indirect []IndRef
	for _, sub := range ix.Index {
		switch s := sub.(type) {
		case *lang.Ident:
			if s.Name != l.Var {
				return 0, IndRef{}, fmt.Errorf("irl:%s: subscript %q is not the loop variable", s.Pos, s.Name)
			}
		case *lang.Num:
			// constant subscript: fine
		case *lang.IndexExpr:
			ind, err := indirectionRef(prog, l, s)
			if err != nil {
				return 0, IndRef{}, err
			}
			indirect = append(indirect, ind)
		default:
			return 0, IndRef{}, fmt.Errorf("irl:%s: unsupported subscript %s", sub.Position(), sub)
		}
	}
	switch len(indirect) {
	case 0:
		return idxRegular, IndRef{}, nil
	case 1:
		return idxIndirect, indirect[0], nil
	default:
		return 0, IndRef{}, fmt.Errorf("irl:%s: array %q accessed through indirection in multiple dimensions (unsupported, Section 4)", ix.Pos, ix.Array)
	}
}

// indirectionRef validates an inner reference ind[i] / ind[i, const] and
// returns its section identity. A nested indirection (ind[ja[i]]) violates
// the single-level restriction.
func indirectionRef(prog *lang.Program, l *lang.Loop, ix *lang.IndexExpr) (IndRef, error) {
	decl := prog.Array(ix.Array)
	if decl == nil {
		return IndRef{}, fmt.Errorf("irl:%s: undeclared array %q", ix.Pos, ix.Array)
	}
	if !decl.Int {
		return IndRef{}, fmt.Errorf("irl:%s: indirection array %q must be declared int", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return IndRef{}, fmt.Errorf("irl:%s: array %q has %d dimensions, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	first, ok := ix.Index[0].(*lang.Ident)
	if !ok {
		if _, nested := ix.Index[0].(*lang.IndexExpr); nested {
			return IndRef{}, fmt.Errorf("irl:%s: multiple levels of indirection in %s; apply source-to-source splitting first (Section 4)", ix.Pos, ix)
		}
		return IndRef{}, fmt.Errorf("irl:%s: indirection subscript must be the loop variable", ix.Pos)
	}
	if first.Name != l.Var {
		return IndRef{}, fmt.Errorf("irl:%s: indirection subscript %q is not the loop variable %q", ix.Pos, first.Name, l.Var)
	}
	ref := IndRef{Array: ix.Array, Col: -1}
	if len(ix.Index) == 2 {
		c, ok := ix.Index[1].(*lang.Num)
		if !ok || float64(int(c.Val)) != c.Val {
			return IndRef{}, fmt.Errorf("irl:%s: second indirection subscript must be an integer literal", ix.Pos)
		}
		ref.Col = int(c.Val)
	}
	return ref, nil
}

// scanRHS records irregular and iteration-aligned reads and rejects
// illegal references on the right-hand side.
func scanRHS(prog *lang.Program, l *lang.Loop, rhs lang.Expr, reads map[Read]bool, iterReads map[string]bool, skip map[lang.Expr]bool) error {
	var firstErr error
	lang.Walk(rhs, func(e lang.Expr) {
		ix, ok := e.(*lang.IndexExpr)
		if !ok || firstErr != nil || skip[e] {
			return
		}
		decl := prog.Array(ix.Array)
		if decl != nil && decl.Int {
			// The indirection array itself; validated at its use site.
			return
		}
		kind, ind, err := classifyIndex(prog, l, ix)
		if err != nil {
			firstErr = err
			return
		}
		if kind == idxIndirect {
			reads[Read{Array: ix.Array, Ind: ind}] = true
		} else {
			iterReads[ix.Array] = true
		}
	})
	return firstErr
}

// buildGroups implements Definition 1: reduction arrays are grouped by the
// set of indirection sections through which they are updated; a group's
// statements are all reductions into its arrays.
func buildGroups(reds []Reduction) []RefGroup {
	// Indirection set per reduction array.
	indsOf := map[string]map[IndRef]bool{}
	for _, r := range reds {
		if indsOf[r.Array] == nil {
			indsOf[r.Array] = map[IndRef]bool{}
		}
		indsOf[r.Array][r.Ind] = true
	}
	keyOf := func(arr string) string {
		var parts []string
		for r := range indsOf[arr] {
			parts = append(parts, r.String())
		}
		sort.Strings(parts)
		return strings.Join(parts, "+")
	}
	groups := map[string]*RefGroup{}
	var order []string
	for _, r := range reds {
		k := keyOf(r.Array)
		g := groups[k]
		if g == nil {
			g = &RefGroup{}
			set := map[IndRef]bool{}
			for ref := range indsOf[r.Array] {
				set[ref] = true
			}
			for ref := range set {
				g.Inds = append(g.Inds, ref)
			}
			sort.Slice(g.Inds, func(a, b int) bool { return g.Inds[a].String() < g.Inds[b].String() })
			groups[k] = g
			order = append(order, k)
		} else {
			// Merge this array's indirection sections (arrays that share a
			// key have identical sets by construction).
		}
		found := false
		for _, a := range g.Arrays {
			if a == r.Array {
				found = true
				break
			}
		}
		if !found {
			g.Arrays = append(g.Arrays, r.Array)
		}
		g.Stmts = append(g.Stmts, r.StmtIndex)
	}
	out := make([]RefGroup, 0, len(order))
	for _, k := range order {
		g := groups[k]
		sort.Strings(g.Arrays)
		out = append(out, *g)
	}
	return out
}
