// Package analysis implements the compiler analysis of Section 4 of the
// paper: extraction of reduction array sections and indirection array
// sections from irregular loops, classification of statements, legality
// checks (single level of indirection, indirection in a single dimension,
// reductions only through associative/commutative updates), and the
// construction of reference groups (Definition 1) that drive loop fission.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"irred/internal/lang"
)

// IndRef identifies one indirection array section: the paper's
// IA(1, num_edges, 1, col) in triplet notation — a whole column of a
// (possibly 2-D) integer array swept by the loop index.
type IndRef struct {
	Array string
	Col   int // second-subscript literal; -1 for 1-D indirection arrays
}

func (r IndRef) String() string {
	if r.Col < 0 {
		return r.Array + "(*)"
	}
	return fmt.Sprintf("%s(*,%d)", r.Array, r.Col)
}

// Triplet renders the section in the paper's triplet notation over the
// given loop extent.
func (r IndRef) Triplet(extent string) string {
	if r.Col < 0 {
		return fmt.Sprintf("%s[0:%s:1]", r.Array, extent)
	}
	return fmt.Sprintf("%s[0:%s:1, %d]", r.Array, extent, r.Col)
}

// Reduction is one irregular reduction statement: Array[Ind] op= RHS.
type Reduction struct {
	StmtIndex int // position in the loop body
	Array     string
	Ind       IndRef
	Negate    bool // true for -=
	RHS       lang.Expr
}

// Read is an irregular read on the right-hand side: Array[Ind] consumed by
// some statement (the paper's C(IA(i,1))) — data that must be available
// wherever the iteration executes.
type Read struct {
	Array string
	Ind   IndRef
}

// RefGroup is a reference group per Definition 1: the set of reduction
// array sections accessed through the same set of indirection array
// sections. One LightInspector serves one group.
type RefGroup struct {
	Inds   []IndRef // sorted set of indirection sections
	Arrays []string // reduction arrays in the group (sorted)
	Stmts  []int    // body statement indices of the group's reductions
}

// Key canonically identifies the indirection set.
func (g *RefGroup) Key() string {
	parts := make([]string, len(g.Inds))
	for i, r := range g.Inds {
		parts[i] = r.String()
	}
	return strings.Join(parts, "+")
}

// LoopInfo is the analysis result for one loop.
type LoopInfo struct {
	Loop       *lang.Loop
	Extent     string      // loop extent rendered (hi expression)
	Reductions []Reduction // irregular reduction statements, body order
	Reads      []Read      // distinct irregular RHS reads
	IterReads  []string    // distinct arrays read at [i] (iteration-aligned)
	ScalarDefs []int       // body indices of scalar definitions
	RegWrites  []int       // body indices of regular (a[i]) writes
	Groups     []RefGroup  // reference groups, deterministic order
}

// NeedsFission reports whether the loop updates more than one reference
// group and so must be split before code generation.
func (li *LoopInfo) NeedsFission() bool { return len(li.Groups) > 1 }

// Result is the whole-program analysis.
type Result struct {
	Program *lang.Program
	Loops   []*LoopInfo
}

// Analyze performs the Section 4 analysis on every loop of the program.
func Analyze(prog *lang.Program) (*Result, error) {
	res := &Result{Program: prog}
	for _, l := range prog.Loops {
		li, err := analyzeLoop(prog, l)
		if err != nil {
			return nil, err
		}
		res.Loops = append(res.Loops, li)
	}
	return res, nil
}

func analyzeLoop(prog *lang.Program, l *lang.Loop) (*LoopInfo, error) {
	li := &LoopInfo{Loop: l, Extent: l.Hi.String()}
	scalars := map[string]bool{}
	readSet := map[Read]bool{}
	iterReadSet := map[string]bool{}

	for idx, st := range l.Body {
		switch {
		case st.Scalar != "":
			if prog.Array(st.Scalar) != nil {
				return nil, fmt.Errorf("irl:%s: %q is an array; subscript required", st.Pos, st.Scalar)
			}
			if st.Op != lang.OpSet {
				return nil, fmt.Errorf("irl:%s: scalar %q must use '='", st.Pos, st.Scalar)
			}
			scalars[st.Scalar] = true
			li.ScalarDefs = append(li.ScalarDefs, idx)
		default:
			kind, ind, err := classifyIndex(prog, l, st.Target)
			if err != nil {
				return nil, err
			}
			switch kind {
			case idxRegular:
				li.RegWrites = append(li.RegWrites, idx)
			case idxIndirect:
				if st.Op == lang.OpSet {
					return nil, fmt.Errorf("irl:%s: irregular write to %q must be a reduction (+= or -=)", st.Pos, st.Target.Array)
				}
				li.Reductions = append(li.Reductions, Reduction{
					StmtIndex: idx,
					Array:     st.Target.Array,
					Ind:       ind,
					Negate:    st.Op == lang.OpSub,
					RHS:       st.RHS,
				})
			}
		}
		// Scan the RHS for irregular reads, iteration-aligned reads, and
		// legality violations.
		if err := scanRHS(prog, l, st.RHS, readSet, iterReadSet); err != nil {
			return nil, err
		}
	}

	if len(li.Reductions) == 0 && len(li.RegWrites) == 0 {
		return nil, fmt.Errorf("irl:%s: loop has no array updates", l.Pos)
	}

	// No loop-carried dependence beyond the reductions: the RHS of any
	// statement must not read an array that the loop reduces into.
	reduced := map[string]bool{}
	for _, r := range li.Reductions {
		reduced[r.Array] = true
	}
	for _, st := range l.Body {
		var bad *lang.IndexExpr
		lang.Walk(st.RHS, func(e lang.Expr) {
			if ix, ok := e.(*lang.IndexExpr); ok && reduced[ix.Array] && bad == nil {
				bad = ix
			}
		})
		if bad != nil {
			return nil, fmt.Errorf("irl:%s: %q is a reduction array and may not be read in the loop", bad.Pos, bad.Array)
		}
	}

	for r := range readSet {
		li.Reads = append(li.Reads, r)
	}
	sort.Slice(li.Reads, func(a, b int) bool {
		if li.Reads[a].Array != li.Reads[b].Array {
			return li.Reads[a].Array < li.Reads[b].Array
		}
		return li.Reads[a].Ind.String() < li.Reads[b].Ind.String()
	})
	for a := range iterReadSet {
		li.IterReads = append(li.IterReads, a)
	}
	sort.Strings(li.IterReads)

	li.Groups = buildGroups(li.Reductions)
	return li, nil
}

type idxKind int

const (
	idxRegular  idxKind = iota // a[i] or a[i, const]
	idxIndirect                // a[ind[i]] or a[ind[i, const]]
)

// classifyIndex validates an array subscript and classifies it. It enforces
// the paper's restrictions: at most one level of indirection, and
// indirection in at most one dimension.
func classifyIndex(prog *lang.Program, l *lang.Loop, ix *lang.IndexExpr) (idxKind, IndRef, error) {
	decl := prog.Array(ix.Array)
	if decl == nil {
		return 0, IndRef{}, fmt.Errorf("irl:%s: undeclared array %q", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return 0, IndRef{}, fmt.Errorf("irl:%s: array %q has %d dimensions, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	var indirect []IndRef
	for _, sub := range ix.Index {
		switch s := sub.(type) {
		case *lang.Ident:
			if s.Name != l.Var {
				return 0, IndRef{}, fmt.Errorf("irl:%s: subscript %q is not the loop variable", s.Pos, s.Name)
			}
		case *lang.Num:
			// constant subscript: fine
		case *lang.IndexExpr:
			ind, err := indirectionRef(prog, l, s)
			if err != nil {
				return 0, IndRef{}, err
			}
			indirect = append(indirect, ind)
		default:
			return 0, IndRef{}, fmt.Errorf("irl:%s: unsupported subscript %s", sub.Position(), sub)
		}
	}
	switch len(indirect) {
	case 0:
		return idxRegular, IndRef{}, nil
	case 1:
		return idxIndirect, indirect[0], nil
	default:
		return 0, IndRef{}, fmt.Errorf("irl:%s: array %q accessed through indirection in multiple dimensions (unsupported, Section 4)", ix.Pos, ix.Array)
	}
}

// indirectionRef validates an inner reference ind[i] / ind[i, const] and
// returns its section identity. A nested indirection (ind[ja[i]]) violates
// the single-level restriction.
func indirectionRef(prog *lang.Program, l *lang.Loop, ix *lang.IndexExpr) (IndRef, error) {
	decl := prog.Array(ix.Array)
	if decl == nil {
		return IndRef{}, fmt.Errorf("irl:%s: undeclared array %q", ix.Pos, ix.Array)
	}
	if !decl.Int {
		return IndRef{}, fmt.Errorf("irl:%s: indirection array %q must be declared int", ix.Pos, ix.Array)
	}
	if len(ix.Index) != len(decl.Dims) {
		return IndRef{}, fmt.Errorf("irl:%s: array %q has %d dimensions, indexed with %d", ix.Pos, ix.Array, len(decl.Dims), len(ix.Index))
	}
	first, ok := ix.Index[0].(*lang.Ident)
	if !ok {
		if _, nested := ix.Index[0].(*lang.IndexExpr); nested {
			return IndRef{}, fmt.Errorf("irl:%s: multiple levels of indirection in %s; apply source-to-source splitting first (Section 4)", ix.Pos, ix)
		}
		return IndRef{}, fmt.Errorf("irl:%s: indirection subscript must be the loop variable", ix.Pos)
	}
	if first.Name != l.Var {
		return IndRef{}, fmt.Errorf("irl:%s: indirection subscript %q is not the loop variable %q", ix.Pos, first.Name, l.Var)
	}
	ref := IndRef{Array: ix.Array, Col: -1}
	if len(ix.Index) == 2 {
		c, ok := ix.Index[1].(*lang.Num)
		if !ok || float64(int(c.Val)) != c.Val {
			return IndRef{}, fmt.Errorf("irl:%s: second indirection subscript must be an integer literal", ix.Pos)
		}
		ref.Col = int(c.Val)
	}
	return ref, nil
}

// scanRHS records irregular and iteration-aligned reads and rejects
// illegal references on the right-hand side.
func scanRHS(prog *lang.Program, l *lang.Loop, rhs lang.Expr, reads map[Read]bool, iterReads map[string]bool) error {
	var firstErr error
	lang.Walk(rhs, func(e lang.Expr) {
		ix, ok := e.(*lang.IndexExpr)
		if !ok || firstErr != nil {
			return
		}
		decl := prog.Array(ix.Array)
		if decl != nil && decl.Int {
			// The indirection array itself; validated at its use site.
			return
		}
		kind, ind, err := classifyIndex(prog, l, ix)
		if err != nil {
			firstErr = err
			return
		}
		if kind == idxIndirect {
			reads[Read{Array: ix.Array, Ind: ind}] = true
		} else {
			iterReads[ix.Array] = true
		}
	})
	return firstErr
}

// buildGroups implements Definition 1: reduction arrays are grouped by the
// set of indirection sections through which they are updated; a group's
// statements are all reductions into its arrays.
func buildGroups(reds []Reduction) []RefGroup {
	// Indirection set per reduction array.
	indsOf := map[string]map[IndRef]bool{}
	for _, r := range reds {
		if indsOf[r.Array] == nil {
			indsOf[r.Array] = map[IndRef]bool{}
		}
		indsOf[r.Array][r.Ind] = true
	}
	keyOf := func(arr string) string {
		var parts []string
		for r := range indsOf[arr] {
			parts = append(parts, r.String())
		}
		sort.Strings(parts)
		return strings.Join(parts, "+")
	}
	groups := map[string]*RefGroup{}
	var order []string
	for _, r := range reds {
		k := keyOf(r.Array)
		g := groups[k]
		if g == nil {
			g = &RefGroup{}
			set := map[IndRef]bool{}
			for ref := range indsOf[r.Array] {
				set[ref] = true
			}
			for ref := range set {
				g.Inds = append(g.Inds, ref)
			}
			sort.Slice(g.Inds, func(a, b int) bool { return g.Inds[a].String() < g.Inds[b].String() })
			groups[k] = g
			order = append(order, k)
		} else {
			// Merge this array's indirection sections (arrays that share a
			// key have identical sets by construction).
		}
		found := false
		for _, a := range g.Arrays {
			if a == r.Array {
				found = true
				break
			}
		}
		if !found {
			g.Arrays = append(g.Arrays, r.Array)
		}
		g.Stmts = append(g.Stmts, r.StmtIndex)
	}
	out := make([]RefGroup, 0, len(order))
	for _, k := range order {
		g := groups[k]
		sort.Strings(g.Arrays)
		out = append(out, *g)
	}
	return out
}
