package analysis

import (
	"strings"
	"testing"

	"irred/internal/lang"
)

const figure1 = `
param num_edges, num_nodes
array ia[num_edges, 2] int
array x[num_nodes]
array y[num_edges]
array c[num_nodes]
loop i = 0, num_edges {
    x[ia[i, 0]] += y[i] * c[ia[i, 0]]
    x[ia[i, 1]] += y[i] * c[ia[i, 1]]
}
`

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(prog)
	return err
}

func TestFigure1Analysis(t *testing.T) {
	res := analyze(t, figure1)
	li := res.Loops[0]
	if len(li.Reductions) != 2 {
		t.Fatalf("reductions = %d", len(li.Reductions))
	}
	r0 := li.Reductions[0]
	if r0.Array != "x" || r0.Ind != (IndRef{Array: "ia", Col: 0}) || r0.Negate {
		t.Fatalf("reduction 0: %+v", r0)
	}
	if li.Reductions[1].Ind.Col != 1 {
		t.Fatalf("reduction 1 column: %+v", li.Reductions[1])
	}
	// The RHS reads c through both indirection sections.
	if len(li.Reads) != 2 || li.Reads[0].Array != "c" {
		t.Fatalf("reads = %+v", li.Reads)
	}
	if len(li.IterReads) != 1 || li.IterReads[0] != "y" {
		t.Fatalf("iter reads = %v", li.IterReads)
	}
	// x via {ia.0, ia.1}: one reference group, no fission.
	if len(li.Groups) != 1 || li.NeedsFission() {
		t.Fatalf("groups = %+v", li.Groups)
	}
	g := li.Groups[0]
	if g.Key() != "ia(*,0)+ia(*,1)" {
		t.Fatalf("group key = %q", g.Key())
	}
	if len(g.Stmts) != 2 {
		t.Fatalf("group stmts = %v", g.Stmts)
	}
}

func TestTwoReferenceGroups(t *testing.T) {
	res := analyze(t, `
param n, m
array ia[n, 2] int
array ja[n] int
array x[m]
array z[m]
array y[n]
loop i = 0, n {
    x[ia[i, 0]] += y[i]
    x[ia[i, 1]] += y[i]
    z[ja[i]] += y[i] * 2
}
`)
	li := res.Loops[0]
	if len(li.Groups) != 2 || !li.NeedsFission() {
		t.Fatalf("groups = %+v", li.Groups)
	}
	if li.Groups[0].Arrays[0] != "x" || li.Groups[1].Arrays[0] != "z" {
		t.Fatalf("group arrays wrong: %+v", li.Groups)
	}
	if li.Groups[1].Key() != "ja(*)" {
		t.Fatalf("1-D indirection key = %q", li.Groups[1].Key())
	}
}

func TestSharedIndirectionSetOneGroup(t *testing.T) {
	// Two arrays accessed via the same set of sections: same group
	// (Definition 1) — one LightInspector serves both.
	res := analyze(t, `
param n, m
array ia[n, 2] int
array x[m]
array z[m]
loop i = 0, n {
    x[ia[i, 0]] += 1
    x[ia[i, 1]] += 1
    z[ia[i, 0]] += 2
    z[ia[i, 1]] -= 2
}
`)
	li := res.Loops[0]
	if len(li.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(li.Groups))
	}
	if len(li.Groups[0].Arrays) != 2 {
		t.Fatalf("group arrays = %v", li.Groups[0].Arrays)
	}
}

func TestNegateDetection(t *testing.T) {
	res := analyze(t, `
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] -= 3 }
`)
	if !res.Loops[0].Reductions[0].Negate {
		t.Fatal("-= not recorded")
	}
}

func TestRejectIrregularSet(t *testing.T) {
	err := analyzeErr(t, `
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] = 1 }
`)
	if err == nil || !strings.Contains(err.Error(), "reduction") {
		t.Fatalf("irregular '=' accepted: %v", err)
	}
}

func TestRejectMultiLevelIndirection(t *testing.T) {
	err := analyzeErr(t, `
param n, m
array ia[n] int
array ja[n] int
array x[m]
loop i = 0, n { x[ia[ja[i]]] += 1 }
`)
	if err == nil || !strings.Contains(err.Error(), "levels of indirection") {
		t.Fatalf("nested indirection accepted: %v", err)
	}
}

func TestRejectMultiDimIndirection(t *testing.T) {
	err := analyzeErr(t, `
param n, m
array ia[n] int
array x[m, 2]
loop i = 0, n { x[ia[i], ia[i]] += 1 }
`)
	if err == nil || !strings.Contains(err.Error(), "multiple dimensions") {
		t.Fatalf("multi-dim indirection accepted: %v", err)
	}
}

func TestRejectReadingReductionArray(t *testing.T) {
	err := analyzeErr(t, `
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] += x[ia[i]] }
`)
	if err == nil || !strings.Contains(err.Error(), "may not be read") {
		t.Fatalf("loop-carried dependence accepted: %v", err)
	}
}

func TestRejectFloatIndirection(t *testing.T) {
	err := analyzeErr(t, `
param n, m
array ia[n]
array x[m]
loop i = 0, n { x[ia[i]] += 1 }
`)
	if err == nil || !strings.Contains(err.Error(), "int") {
		t.Fatalf("float indirection accepted: %v", err)
	}
}

func TestRejectNonLoopVarSubscript(t *testing.T) {
	err := analyzeErr(t, `
param n
array a[n]
loop i = 0, n {
    t = 1
    a[t] = 2
}
`)
	if err == nil {
		t.Fatal("computed scalar subscript accepted")
	}
}

func TestRegularLoopAccepted(t *testing.T) {
	res := analyze(t, `
param n
array a[n]
array b[n]
loop i = 0, n { a[i] = b[i] * 2 }
`)
	li := res.Loops[0]
	if len(li.Reductions) != 0 || len(li.RegWrites) != 1 {
		t.Fatalf("regular loop misclassified: %+v", li)
	}
}

func TestTripletNotation(t *testing.T) {
	r := IndRef{Array: "ia", Col: 1}
	if got := r.Triplet("num_edges"); got != "ia[0:num_edges:1, 1]" {
		t.Fatalf("triplet = %q", got)
	}
	r1 := IndRef{Array: "ja", Col: -1}
	if got := r1.Triplet("n"); got != "ja[0:n:1]" {
		t.Fatalf("1-D triplet = %q", got)
	}
}
