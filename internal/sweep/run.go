package sweep

import (
	"context"
	"fmt"
	"time"

	"irred/internal/benchfmt"
	"irred/internal/buildinfo"
	"irred/internal/codegen"
	"irred/internal/fault"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/obs"
	"irred/internal/rts"
	"irred/internal/service"
)

// Options controls the per-cell measurement protocol.
type Options struct {
	// Steps is the number of timesteps per measured run; Warmup runs are
	// executed and discarded before Repeats measured runs.
	Steps   int
	Warmup  int
	Repeats int

	// TrimFrac is the outlier-trim fraction handed to benchfmt.NewStats:
	// floor(Repeats*TrimFrac) fastest and slowest runs are dropped from
	// the trimmed mean the comparator scores by.
	TrimFrac float64

	// Seed makes dataset generation deterministic.
	Seed int64

	// Cache serves LightInspector schedules to the native and distributed
	// engines, exactly as the irredd serving path does; the per-cell hit/
	// miss delta lands in the BENCH cell. Nil runs a private cache.
	Cache *service.Cache

	// Stamp is the identity block of the emitted summary (see NewStamp).
	Stamp benchfmt.Stamp

	// Progress, when non-nil, receives one line per cell.
	Progress func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Steps <= 0 {
		o.Steps = 3
	}
	if o.Repeats <= 0 {
		o.Repeats = 5
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.TrimFrac <= 0 {
		o.TrimFrac = 0.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// NewStamp builds the summary identity block from the embedded build
// info and the harness clock.
func NewStamp(now time.Time) benchfmt.Stamp {
	bi := buildinfo.Get()
	now = now.UTC()
	return benchfmt.Stamp{
		Schema:     benchfmt.Schema,
		Date:       now.Format("2006-01-02"),
		Time:       now.Format(time.RFC3339),
		Commit:     bi.Revision,
		CommitTime: bi.CommitTime,
		Dirty:      bi.Modified,
		Module:     bi.Module,
		Version:    bi.Version,
		GoVersion:  bi.GoVersion,
		OS:         bi.OS,
		Arch:       bi.Arch,
		NumCPU:     bi.NumCPU,
	}
}

// Run expands the grid and measures every legal cell, returning the full
// BENCH summary (including the skip records). Cells that fail to execute
// are recorded with their error; only a malformed grid aborts the sweep.
func Run(g Grid, opt Options) (*benchfmt.Summary, error) {
	cells, skipped, err := g.Expand()
	if err != nil {
		return nil, err
	}
	opt.fill()
	if opt.Cache == nil {
		if opt.Cache, err = service.NewCache(1024, ""); err != nil {
			return nil, err
		}
	}
	s := &benchfmt.Summary{Stamp: opt.Stamp, Skipped: skipped}
	if s.Schema == "" {
		s.Schema = benchfmt.Schema
	}
	for i, c := range cells {
		bc := RunCell(c, opt)
		status := fmt.Sprintf("%.3fms", bc.Wall.Score())
		if bc.Error != "" {
			status = "ERROR " + bc.Error
		}
		opt.progress("cell %d/%d %s: %s", i+1, len(cells), c.ID(), status)
		s.Cells = append(s.Cells, bc)
	}
	return s, nil
}

// RunCell measures one cell: Warmup discarded runs, then Repeats measured
// runs of Steps timesteps each, every run through a freshly constructed
// engine over cached datasets and cache-served schedules. The cell
// carries outlier-trimmed wall statistics, reservoir percentiles, the
// per-phase span budget from internal/obs, and the schedule-cache
// traffic delta it caused.
func RunCell(c Cell, opt Options) benchfmt.Cell {
	opt.fill()
	bc := benchfmt.Cell{
		ID: c.ID(), Kernel: c.Kernel, Class: c.Class, Engine: c.Engine,
		P: c.P, K: c.K, Dist: c.Dist, Checked: c.Checked, Chaos: c.Chaos,
		DeltaFrac: c.DeltaFrac, Adapt: c.Adapt,
		Steps: opt.Steps, Warmup: opt.Warmup, Repeats: opt.Repeats,
	}
	tracer := obs.New(1 << 15)
	var before service.CacheStats
	if opt.Cache != nil {
		before = opt.Cache.Stats()
	}
	run, err := newRunner(c, &opt, tracer)
	if err != nil {
		bc.Error = err.Error()
		return bc
	}
	samples := make([]float64, 0, opt.Repeats)
	hist := obs.NewReservoir(0)
	for r := 0; r < opt.Warmup+opt.Repeats; r++ {
		ms, simSec, err := safeRun(run)
		if err != nil {
			bc.Error = err.Error()
			return bc
		}
		if r < opt.Warmup {
			continue
		}
		samples = append(samples, ms)
		hist.Add(ms)
		if simSec > 0 {
			bc.SimSeconds = simSec
		}
	}
	bc.Wall = benchfmt.NewStats(samples, opt.TrimFrac)
	q := hist.Quantiles(0.5, 0.95, 0.99)
	bc.P50MS, bc.P95MS, bc.P99MS = q[0], q[1], q[2]
	if spans, _ := tracer.Snapshot(); len(spans) > 0 {
		bc.PhaseMS = map[string]float64{}
		for _, a := range obs.Aggregate(spans, false) {
			bc.PhaseMS[a.Name] = float64(a.TotalNS) / 1e6
		}
	}
	if opt.Cache != nil {
		after := opt.Cache.Stats()
		bc.CacheHits = after.Hits - before.Hits
		bc.CacheMisses = after.Misses - before.Misses
		if total := bc.CacheHits + bc.CacheMisses; total > 0 {
			bc.CacheHitRatio = float64(bc.CacheHits) / float64(total)
		}
	}
	return bc
}

// runFunc executes one full run of Steps timesteps — engine construction
// untimed, execution timed — returning wall milliseconds and, for sim
// cells, the modeled seconds.
type runFunc func() (ms, simSeconds float64, err error)

// safeRun converts an engine panic (a corrupted schedule, an overflow in
// hand-built phase programs) into a recorded cell error so one broken
// cell cannot abort a multi-hour sweep.
func safeRun(f runFunc) (ms, simSeconds float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: engine panic: %v", r)
		}
	}()
	return f()
}

// newRunner builds the engine-specific measurement closure for a cell.
func newRunner(c Cell, opt *Options, tracer *obs.Tracer) (runFunc, error) {
	dist, err := c.dist()
	if err != nil {
		return nil, err
	}
	if c.Kernel == "adaptive" {
		return adaptiveRunner(c, opt, dist)
	}
	switch c.Engine {
	case EngineNative:
		return nativeRunner(c, opt, dist, tracer)
	case EngineDistributed:
		return distributedRunner(c, opt, dist, tracer)
	case EngineTreeFold:
		return treeFoldRunner(c, opt)
	case EngineInterp:
		return interpRunner(c, opt)
	case EngineSim:
		return simRunner(c, opt, dist)
	default:
		return nil, fmt.Errorf("sweep: unknown engine %q", c.Engine)
	}
}

// schedules serves the loop's LightInspector schedules through the cache,
// computing and inserting them on a miss — the exact serving-path
// amortization the paper argues for, measured per cell.
func schedules(l *rts.Loop, cache *service.Cache) ([]*inspector.Schedule, error) {
	if cache == nil {
		return l.Schedules()
	}
	key := inspector.ScheduleKey(l.Cfg, l.Ind...)
	if scheds, ok := cache.Get(key); ok {
		return scheds, nil
	}
	scheds, err := l.Schedules()
	if err != nil {
		return nil, err
	}
	if err := cache.Put(key, scheds); err != nil {
		return nil, err
	}
	return scheds, nil
}

// loopFor builds the rts.Loop of a named kernel or raw workload.
func loopFor(c Cell, opt *Options, dist inspector.Dist) (*rts.Loop, error) {
	switch c.Kernel {
	case "mvm":
		m, err := mvmData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return kernels.NewMVM(m).Loop(c.P, c.K, dist), nil
	case "euler":
		e, err := eulerData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return e.Loop(c.P, c.K, dist), nil
	case "moldyn":
		sys, err := moldynData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return kernels.NewMoldyn(sys).Loop(c.P, c.K, dist), nil
	case "raw":
		r, err := rawData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return r.loop(c.P, c.K, dist), nil
	default:
		return nil, fmt.Errorf("sweep: unknown kernel %q", c.Kernel)
	}
}

func nativeRunner(c Cell, opt *Options, dist inspector.Dist, tracer *obs.Tracer) (runFunc, error) {
	build, err := nativeBuilder(c, opt, dist)
	if err != nil {
		return nil, err
	}
	steps := opt.Steps
	cache := opt.Cache
	return func() (float64, float64, error) {
		// Schedules come through the cache every run: the first run of the
		// cell pays the LightInspector, later runs measure the amortized
		// serving path.
		l, err := loopFor(c, opt, dist)
		if err != nil {
			return 0, 0, err
		}
		l.Trace = tracer
		scheds, err := schedules(l, cache)
		if err != nil {
			return 0, 0, err
		}
		n, err := build(scheds)
		if err != nil {
			return 0, 0, err
		}
		n.Trace = tracer
		n.CheckTargets = c.Checked
		start := time.Now()
		err = n.Run(steps)
		return float64(time.Since(start)) / 1e6, 0, err
	}, nil
}

// nativeBuilder returns the per-run engine constructor of a native cell.
func nativeBuilder(c Cell, opt *Options, dist inspector.Dist) (func([]*inspector.Schedule) (*rts.Native, error), error) {
	switch c.Kernel {
	case "mvm":
		m, err := mvmData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		mv := kernels.NewMVM(m)
		return func(scheds []*inspector.Schedule) (*rts.Native, error) {
			return mv.NewNativeFrom(scheds, c.P, c.K, dist)
		}, nil
	case "euler":
		e, err := eulerData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return func(scheds []*inspector.Schedule) (*rts.Native, error) {
			n, _, err := e.NewNativeFrom(scheds, c.P, c.K, dist)
			return n, err
		}, nil
	case "moldyn":
		sys, err := moldynData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		md := kernels.NewMoldyn(sys)
		return func(scheds []*inspector.Schedule) (*rts.Native, error) {
			n, _, _, err := md.NewNativeFrom(scheds, c.P, c.K, dist)
			return n, err
		}, nil
	case "raw":
		r, err := rawData(c.Class, opt.Seed)
		if err != nil {
			return nil, err
		}
		return func(scheds []*inspector.Schedule) (*rts.Native, error) {
			n, err := rts.NewNativeFrom(r.loop(c.P, c.K, dist), scheds)
			if err != nil {
				return nil, err
			}
			n.Contribs = r.contribs
			return n, nil
		}, nil
	default:
		return nil, fmt.Errorf("sweep: engine native does not run kernel %q", c.Kernel)
	}
}

// adaptiveRunner measures the streaming amortization claim: an
// euler-shaped mesh absorbs one deterministic refinement step per timestep
// (a drifting hotspot rewiring DeltaFrac of the edges), and the cell times
// only the schedule maintenance that follows — per-processor
// Schedule.Update for AdaptIncr cells, a LightInspector rebuild for
// AdaptFull cells. Both arms of a delta-fraction pair replay the identical
// mesh trajectory, so their wall difference is purely the maintenance
// path; the reduction run that would follow is the same in either arm and
// is deliberately excluded.
func adaptiveRunner(c Cell, opt *Options, dist inspector.Dist) (runFunc, error) {
	nodes, edges := mesh.Paper2K()
	if c.Class == "10k" {
		nodes, edges = mesh.Paper10K()
	}
	m := mesh.Generate(nodes, edges, opt.Seed)
	cfg := inspector.Config{P: c.P, K: c.K, NumIters: m.NumEdges(), NumElems: m.NumNodes, Dist: dist}
	ind := [][]int32{m.I1, m.I2}
	incr := c.Adapt == AdaptIncr
	if !incr && c.Adapt != AdaptFull {
		return nil, fmt.Errorf("sweep: adaptive cell has unknown maintenance mode %q", c.Adapt)
	}
	scheds := make([]*inspector.Schedule, c.P)
	for p := range scheds {
		s, err := inspector.Light(cfg, p, ind...)
		if err != nil {
			return nil, err
		}
		if incr {
			s.BeginIncremental()
		}
		scheds[p] = s
	}
	step := 0
	steps := opt.Steps
	return func() (float64, float64, error) {
		var total time.Duration
		for n := 0; n < steps; n++ {
			changed := m.Adapt(step, c.DeltaFrac, opt.Seed+1)
			step++
			start := time.Now()
			if incr {
				for _, s := range scheds {
					if err := s.Update(changed, ind...); err != nil {
						return 0, 0, err
					}
				}
			} else {
				for p := range scheds {
					s, err := inspector.Light(cfg, p, ind...)
					if err != nil {
						return 0, 0, err
					}
					scheds[p] = s
				}
			}
			total += time.Since(start)
		}
		return float64(total) / 1e6, 0, nil
	}, nil
}

func distributedRunner(c Cell, opt *Options, dist inspector.Dist, tracer *obs.Tracer) (runFunc, error) {
	if c.Kernel != "raw" {
		return nil, fmt.Errorf("sweep: engine distributed runs raw reductions only, not %q", c.Kernel)
	}
	r, err := rawData(c.Class, opt.Seed)
	if err != nil {
		return nil, err
	}
	var spec fault.Spec
	if c.Chaos != "" {
		if spec, err = fault.ParseSpec(c.Chaos); err != nil {
			return nil, err
		}
	}
	steps := opt.Steps
	cache := opt.Cache
	return func() (float64, float64, error) {
		l := r.loop(c.P, c.K, dist)
		l.Trace = tracer
		scheds, err := schedules(l, cache)
		if err != nil {
			return 0, 0, err
		}
		d, err := rts.NewDistributedFrom(l, scheds)
		if err != nil {
			return 0, 0, err
		}
		d.Contribs = r.contribs
		d.Trace = tracer
		if spec.Enabled() {
			d.Inject = fault.New(spec)
			// Injected losses should recover in milliseconds, not at the
			// production watchdog's pace.
			d.Watchdog = 30 * time.Millisecond
		}
		start := time.Now()
		_, err = d.RunContext(context.Background(), steps)
		return float64(time.Since(start)) / 1e6, 0, err
	}, nil
}

func treeFoldRunner(c Cell, opt *Options) (runFunc, error) {
	u, err := unit(c.Kernel)
	if err != nil {
		return nil, err
	}
	steps := opt.Steps
	return func() (float64, float64, error) {
		env, err := newEnv(c.Kernel, c.Class, opt.Seed, u)
		if err != nil {
			return 0, 0, err
		}
		folds := make(map[*codegen.Plan]*rts.TreeFold, len(u.Plans))
		for _, p := range u.Plans {
			if p.Kind != codegen.Irregular {
				continue
			}
			tf, err := p.BuildTreeFold(env, c.P)
			if err != nil {
				return 0, 0, err
			}
			tf.CheckTargets = c.Checked
			folds[p] = tf
		}
		start := time.Now()
		for step := 0; step < steps; step++ {
			for _, p := range u.Plans {
				if p.Kind == codegen.Regular {
					if err := env.RunLoop(p.Loop); err != nil {
						return 0, 0, err
					}
					continue
				}
				tf := folds[p]
				if err := p.Pack(env, tf.X); err != nil {
					return 0, 0, err
				}
				if err := tf.Run(1); err != nil {
					return 0, 0, err
				}
				if err := p.Scatter(env, tf.X); err != nil {
					return 0, 0, err
				}
			}
		}
		return float64(time.Since(start)) / 1e6, 0, nil
	}, nil
}

func interpRunner(c Cell, opt *Options) (runFunc, error) {
	u, err := unit(c.Kernel)
	if err != nil {
		return nil, err
	}
	steps := opt.Steps
	return func() (float64, float64, error) {
		env, err := newEnv(c.Kernel, c.Class, opt.Seed, u)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for step := 0; step < steps; step++ {
			if err := env.Run(); err != nil {
				return 0, 0, err
			}
		}
		return float64(time.Since(start)) / 1e6, 0, nil
	}, nil
}

func simRunner(c Cell, opt *Options, dist inspector.Dist) (runFunc, error) {
	steps := opt.Steps
	return func() (float64, float64, error) {
		l, err := loopFor(c, opt, dist)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		res, err := rts.RunSim(l, rts.SimOptions{Steps: steps})
		if err != nil {
			return 0, 0, err
		}
		return float64(time.Since(start)) / 1e6, res.Seconds, nil
	}, nil
}
