package sweep

import (
	"strings"
	"testing"
)

// The adaptive grid expands each delta fraction into an incr/full cell
// pair, so every fraction's amortization comparison has both arms.
func TestAdaptiveGridExpands(t *testing.T) {
	g := AdaptiveGrid()
	cells, skipped, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 Ps * 1 K * 1 dist * 1 checked * 7 fracs * 2 modes.
	want := 2 * len(g.DeltaFracs) * 2
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected skips: %v", skipped)
	}
	pair := map[string][2]bool{} // frac/P key -> {incr seen, full seen}
	for _, c := range cells {
		if c.Kernel != "adaptive" || c.DeltaFrac <= 0 {
			t.Fatalf("malformed adaptive cell: %+v", c)
		}
		if !strings.Contains(c.ID(), "/delta=") {
			t.Fatalf("cell ID %q carries no delta axis", c.ID())
		}
		key := c.ID()[:strings.LastIndex(c.ID(), "/")]
		v := pair[key]
		switch c.Adapt {
		case AdaptIncr:
			v[0] = true
		case AdaptFull:
			v[1] = true
		default:
			t.Fatalf("cell %s has adapt mode %q", c.ID(), c.Adapt)
		}
		pair[key] = v
	}
	for key, v := range pair {
		if !v[0] || !v[1] {
			t.Fatalf("fraction %s missing an arm: incr=%v full=%v", key, v[0], v[1])
		}
	}
}

// Unchecked adaptive points are skipped (the checked dimension does not
// apply to schedule maintenance), and a fraction outside (0,1] is a
// configuration error.
func TestAdaptiveGridLegality(t *testing.T) {
	g := AdaptiveGrid()
	g.Checked = []bool{true, false}
	cells, skipped, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != len(cells) {
		t.Fatalf("skips = %d, want one per legal cell (%d)", len(skipped), len(cells))
	}
	for _, s := range skipped {
		if !strings.Contains(s.Reason, "checked dimension") {
			t.Fatalf("skip %s has wrong reason: %s", s.ID, s.Reason)
		}
	}

	g = AdaptiveGrid()
	g.DeltaFracs = []float64{0, 0.5}
	if _, _, err := g.Expand(); err == nil {
		t.Fatal("delta fraction 0 must be a configuration error")
	}
	g.DeltaFracs = []float64{1.5}
	if _, _, err := g.Expand(); err == nil {
		t.Fatal("delta fraction > 1 must be a configuration error")
	}
}

// An adaptive cell runs end to end through the harness: both maintenance
// modes record positive wall time, and the non-native engines refuse it.
func TestRunCellAdaptive(t *testing.T) {
	opt := testOpts(t)
	opt.Steps, opt.Warmup, opt.Repeats = 2, 0, 2
	for _, mode := range []string{AdaptIncr, AdaptFull} {
		c := Cell{
			Kernel: "adaptive", Class: "2k", Engine: EngineNative,
			P: 2, K: 2, Dist: "cyclic", Checked: true,
			DeltaFrac: 0.05, Adapt: mode,
		}
		bc := RunCell(c, opt)
		if bc.Error != "" {
			t.Fatalf("%s cell error: %s", mode, bc.Error)
		}
		if bc.Wall.Count != 2 || bc.Wall.Score() <= 0 {
			t.Fatalf("%s cell recorded no timing: %+v", mode, bc.Wall)
		}
		if bc.DeltaFrac != 0.05 || bc.Adapt != mode {
			t.Fatalf("delta axis lost on BENCH cell: %+v", bc)
		}
	}

	bad := Cell{
		Kernel: "adaptive", Class: "2k", Engine: EngineNative,
		P: 2, K: 2, Dist: "cyclic", Checked: true,
		DeltaFrac: 0.05, Adapt: "sideways",
	}
	if bc := RunCell(bad, opt); bc.Error == "" {
		t.Fatal("unknown maintenance mode must surface as a cell error")
	}
}
