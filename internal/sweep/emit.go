package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"irred/internal/benchfmt"
	"irred/internal/obs"
)

// csvHeader is the stable column order of the CSV emitter. Phase columns
// cover the span names the engines record; engines that record no spans
// leave them zero.
var csvHeader = []string{
	"id", "kernel", "class", "engine", "p", "k", "dist", "checked", "chaos",
	"delta_frac", "adapt",
	"steps", "warmup", "repeats",
	"mean_ms", "trimmed_mean_ms", "min_ms", "max_ms", "stddev_ms",
	"p50_ms", "p95_ms", "p99_ms",
	"cache_hits", "cache_misses", "cache_hit_ratio",
	"sim_seconds",
	"compute_ms", "copy_ms", "wait_ms", "update_ms", "inspect_ms",
	"error",
}

// WriteCSV renders the summary's cells as one CSV row per cell.
func WriteCSV(path string, s *benchfmt.Summary) error {
	if err := ensureDir(path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(csvHeader); err != nil {
		f.Close()
		return fmt.Errorf("sweep: %w", err)
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range s.Cells {
		c := &s.Cells[i]
		row := []string{
			c.ID, c.Kernel, c.Class, c.Engine,
			strconv.Itoa(c.P), strconv.Itoa(c.K), c.Dist,
			strconv.FormatBool(c.Checked), c.Chaos,
			ff(c.DeltaFrac), c.Adapt,
			strconv.Itoa(c.Steps), strconv.Itoa(c.Warmup), strconv.Itoa(c.Repeats),
			ff(c.Wall.MeanMS), ff(c.Wall.TrimmedMS), ff(c.Wall.MinMS), ff(c.Wall.MaxMS), ff(c.Wall.StdDevMS),
			ff(c.P50MS), ff(c.P95MS), ff(c.P99MS),
			strconv.FormatInt(c.CacheHits, 10), strconv.FormatInt(c.CacheMisses, 10), ff(c.CacheHitRatio),
			ff(c.SimSeconds),
			ff(c.PhaseMS[obs.SpanCompute]), ff(c.PhaseMS[obs.SpanCopy]), ff(c.PhaseMS[obs.SpanWait]),
			ff(c.PhaseMS[obs.SpanUpdate]), ff(c.PhaseMS[obs.SpanInspect]),
			c.Error,
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return fmt.Errorf("sweep: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("sweep: %w", err)
	}
	return f.Close()
}

// jsonlRecord is one JSONL line: the cell plus the identity stamp, so a
// single grep-able line carries everything needed to attribute a number
// to a commit and machine.
type jsonlRecord struct {
	benchfmt.Stamp
	Cell benchfmt.Cell `json:"cell"`
}

// WriteJSONL renders the summary as one stamped JSON object per cell.
func WriteJSONL(path string, s *benchfmt.Summary) error {
	if err := ensureDir(path); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	for i := range s.Cells {
		if err := enc.Encode(jsonlRecord{Stamp: s.Stamp, Cell: s.Cells[i]}); err != nil {
			f.Close()
			return fmt.Errorf("sweep: %w", err)
		}
	}
	return f.Close()
}

func ensureDir(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	return nil
}
