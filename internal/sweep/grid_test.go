package sweep

import (
	"strings"
	"testing"
)

// A native-only grid over one kernel is a pure cartesian product: every
// point is legal, so |cells| = |P| * |k| * |dist| * |checked|.
func TestExpandCartesianProduct(t *testing.T) {
	g := Grid{
		Kernels: []string{"mvm"},
		Classes: map[string][]string{"mvm": {"S"}},
		Ps:      []int{1, 2},
		Ks:      []int{1, 2},
		Dists:   []string{"block", "cyclic"},
		Engines: []string{EngineNative},
		Checked: []bool{true, false},
	}
	cells, skipped, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 || len(skipped) != 0 {
		t.Fatalf("cells = %d, skipped = %d, want 16/0", len(cells), len(skipped))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID()] {
			t.Fatalf("duplicate cell %s", c.ID())
		}
		seen[c.ID()] = true
	}
	if !seen["mvm/S/native/p2/k1/cyclic/unchecked"] {
		t.Fatalf("expected canonical cell missing; have %v", seen)
	}
}

func TestDefaultGridExpands(t *testing.T) {
	cells, skipped, err := DefaultGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("default grid expanded to no cells")
	}
	for _, s := range skipped {
		if s.Reason == "" {
			t.Fatalf("skip %s has no reason", s.ID)
		}
	}
	for _, c := range cells {
		if c.Engine == EngineDistributed && c.Kernel != "raw" {
			t.Fatalf("distributed cell on named kernel: %s", c.ID())
		}
		if c.Engine == EngineInterp && (c.P != 1 || c.K != 1) {
			t.Fatalf("parallel interp cell: %s", c.ID())
		}
		if c.Chaos != "" && c.Engine != EngineDistributed {
			t.Fatalf("chaos outside distributed: %s", c.ID())
		}
	}
}

func TestSmallGridExpands(t *testing.T) {
	cells, _, err := SmallGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]bool{}
	for _, c := range cells {
		engines[c.Engine] = true
	}
	// The CI short sweep must still cross every engine.
	for _, e := range Engines {
		if !engines[e] {
			t.Fatalf("small grid never reaches engine %s (cells: %d)", e, len(cells))
		}
	}
}

// skipOf returns the reason the grid point was skipped, "" if it ran.
func skipOf(t *testing.T, g Grid, wantCells int) string {
	t.Helper()
	cells, skipped, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != wantCells {
		t.Fatalf("cells = %d, want %d (skips: %v)", len(cells), wantCells, skipped)
	}
	if len(skipped) == 0 {
		return ""
	}
	return skipped[0].Reason
}

func TestExpandSkipRules(t *testing.T) {
	one := func(kernel, class, engine string, p, k int, dist string, checked bool, chaos string) Grid {
		return Grid{
			Kernels: []string{kernel},
			Classes: map[string][]string{kernel: {class}},
			Ps:      []int{p}, Ks: []int{k}, Dists: []string{dist},
			Engines: []string{engine},
			Checked: []bool{checked},
			Chaos:   []string{chaos},
		}
	}
	cases := []struct {
		name string
		g    Grid
		want string // substring of the skip reason; "" = cell must run
	}{
		{"treefold_needs_k1", one("mvm", "S", EngineTreeFold, 2, 2, "block", false, ""), "tree-fold has no k/dist"},
		{"treefold_needs_block", one("mvm", "S", EngineTreeFold, 2, 1, "cyclic", false, ""), "tree-fold has no k/dist"},
		{"treefold_canonical_runs", one("mvm", "S", EngineTreeFold, 2, 1, "block", false, ""), ""},
		{"raw_has_no_treefold", one("raw", "tiny", EngineTreeFold, 2, 1, "block", false, ""), "does not support engine treefold"},
		{"interp_is_sequential", one("mvm", "S", EngineInterp, 2, 1, "block", true, ""), "interp is sequential"},
		{"interp_checked_only", one("mvm", "S", EngineInterp, 1, 1, "block", false, ""), "no proof-elided"},
		{"distributed_needs_p2", one("raw", "tiny", EngineDistributed, 1, 1, "cyclic", true, ""), "needs P >= 2"},
		{"distributed_checked_only", one("raw", "tiny", EngineDistributed, 2, 1, "cyclic", false, ""), "no proof-elided"},
		{"sim_checked_only", one("euler", "2k", EngineSim, 2, 1, "block", false, ""), "checked dimension does not apply"},
		{"chaos_needs_distributed", one("mvm", "S", EngineNative, 2, 1, "block", true, "drop=0.1"), "fault injection requires the distributed engine"},
		{"chaos_distributed_runs", one("raw", "tiny", EngineDistributed, 2, 1, "cyclic", true, "drop=0.1"), ""},
		{"named_kernel_no_distributed", one("euler", "2k", EngineDistributed, 2, 1, "block", true, ""), "does not support engine distributed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCells := 0
			if tc.want == "" {
				wantCells = 1
			}
			reason := skipOf(t, tc.g, wantCells)
			if tc.want == "" && reason != "" {
				t.Fatalf("unexpected skip: %s", reason)
			}
			if tc.want != "" && !strings.Contains(reason, tc.want) {
				t.Fatalf("skip reason %q does not mention %q", reason, tc.want)
			}
		})
	}
}

// An unlicensed tree-fold request must be refused by the license rule,
// not fail at run time. A test kernel whose reduction overwrites (=)
// instead of folding gets no tree-fold grant from the legality pass.
func TestExpandTreeFoldLicenseRule(t *testing.T) {
	const src = `
param num_edges, num_nodes
array e[num_edges] int
array w[num_edges]
array x[num_nodes]

loop i = 0, num_edges {
    x[e[i]] = w[i]
}
`
	kernelRegistry["overwrite"] = &kernelDef{
		classes: []string{"tiny"},
		engines: set(EngineTreeFold),
		irl:     src,
	}
	defer func() {
		delete(kernelRegistry, "overwrite")
		dataMu.Lock()
		delete(unitCache, "overwrite")
		dataMu.Unlock()
	}()
	g := Grid{
		Kernels: []string{"overwrite"},
		Ps:      []int{2}, Ks: []int{1}, Dists: []string{"block"},
		Engines: []string{EngineTreeFold},
		Checked: []bool{true},
	}
	cells, skipped, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 || len(skipped) != 1 {
		t.Fatalf("cells = %d, skipped = %d, want 0/1", len(cells), len(skipped))
	}
	if !strings.Contains(skipped[0].Reason, "tree-fold") {
		t.Fatalf("skip reason %q does not name the tree-fold license rule", skipped[0].Reason)
	}
}

func TestExpandConfigErrors(t *testing.T) {
	base := func() Grid {
		return Grid{
			Kernels: []string{"mvm"},
			Classes: map[string][]string{"mvm": {"S"}},
			Ps:      []int{1}, Ks: []int{1}, Dists: []string{"block"},
			Engines: []string{EngineNative},
			Checked: []bool{true},
		}
	}
	cases := map[string]func(*Grid){
		"unknown_kernel": func(g *Grid) { g.Kernels = []string{"fft"} },
		"unknown_class":  func(g *Grid) { g.Classes = map[string][]string{"mvm": {"XXL"}} },
		"unknown_engine": func(g *Grid) { g.Engines = []string{"quantum"} },
		"unknown_dist":   func(g *Grid) { g.Dists = []string{"diagonal"} },
		"bad_chaos":      func(g *Grid) { g.Chaos = []string{"drop=lots"} },
		"p_out_of_range": func(g *Grid) { g.Ps = []int{0} },
		"k_out_of_range": func(g *Grid) { g.Ks = []int{65} },
		"empty_dim":      func(g *Grid) { g.Engines = nil },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			g := base()
			mutate(&g)
			if _, _, err := g.Expand(); err == nil {
				t.Fatal("malformed grid must be a configuration error, not a skip")
			}
		})
	}
}

func TestCellID(t *testing.T) {
	c := Cell{Kernel: "raw", Class: "tiny", Engine: "distributed", P: 3, K: 2, Dist: "block", Checked: true, Chaos: "drop=0.1"}
	want := "raw/tiny/distributed/p3/k2/block/checked/chaos=drop=0.1"
	if c.ID() != want {
		t.Fatalf("ID = %q, want %q", c.ID(), want)
	}
	c.Chaos = ""
	c.Checked = false
	if c.ID() != "raw/tiny/distributed/p3/k2/block/unchecked" {
		t.Fatalf("ID = %q", c.ID())
	}
}
