package sweep

import (
	"fmt"

	"irred/internal/benchfmt"
	"irred/internal/codegen"
	"irred/internal/dataflow"
	"irred/internal/fault"
	"irred/internal/kernels"
)

// kernelDef describes one workload family to the expansion: its legal
// classes, the engines that can execute it, and (for named kernels) the
// IRL source behind the tree-fold and interp paths.
type kernelDef struct {
	classes []string
	engines map[string]bool
	irl     string
}

// kernelRegistry is the harness's workload catalogue. The distributed
// engine appears only under raw: it executes bare pair reductions (the
// service's raw job shape) and has no hook for the named kernels'
// between-sweep state updates.
var kernelRegistry = map[string]*kernelDef{
	"mvm": {
		classes: []string{"S", "W", "A", "B"},
		engines: set(EngineNative, EngineTreeFold, EngineInterp, EngineSim),
		irl:     kernels.MVMIRL,
	},
	"euler": {
		classes: []string{"2k", "10k"},
		engines: set(EngineNative, EngineTreeFold, EngineInterp, EngineSim),
		irl:     kernels.EulerIRL,
	},
	"moldyn": {
		classes: []string{"2k", "10k"},
		engines: set(EngineNative, EngineTreeFold, EngineInterp, EngineSim),
		irl:     kernels.MoldynIRL,
	},
	"raw": {
		classes: []string{"tiny", "small", "large"},
		engines: set(EngineNative, EngineDistributed),
	},
	// adaptive is the streaming workload family: an euler-shaped mesh
	// absorbing deterministic refinement steps. Its cells time schedule
	// maintenance per adaptation step — Schedule.Update vs LightInspector
	// rebuild — at each delta fraction, so the incremental-vs-full
	// crossover (the session fallback threshold) is a measured number.
	"adaptive": {
		classes: []string{"2k", "10k"},
		engines: set(EngineNative),
	},
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Kernels lists the registered kernel names in canonical order.
func Kernels() []string { return []string{"mvm", "euler", "moldyn", "raw"} }

// Classes lists the legal classes of a kernel, nil if unknown.
func Classes(kernel string) []string {
	if def, ok := kernelRegistry[kernel]; ok {
		return append([]string(nil), def.classes...)
	}
	return nil
}

// Grid is the sweep's input: the cartesian product of its dimensions is
// expanded into cells, with illegal combinations recorded as skips.
type Grid struct {
	// Kernels to sweep. Classes optionally narrows the classes per kernel;
	// a kernel with no entry sweeps every registered class.
	Kernels []string
	Classes map[string][]string

	Ps    []int
	Ks    []int
	Dists []string

	Engines []string

	// Checked lists the bounds-check modes to sweep: true = per-write
	// target validation forced on, false = proof-elided execution.
	Checked []bool

	// Chaos lists fault-injection specs (fault.ParseSpec syntax); the
	// empty string means no injection. Non-empty specs only apply to the
	// distributed engine — everywhere else they are recorded as skips.
	Chaos []string

	// DeltaFracs is the delta-fraction axis of the "adaptive" kernel:
	// each fraction expands into an incr/full cell pair timing the two
	// schedule-maintenance paths. Other kernels ignore it. Empty defaults
	// to 0.05 when the adaptive kernel is swept.
	DeltaFracs []float64
}

// DefaultGrid is the documented full sweep: every engine over the paper's
// small-to-medium workloads, P up to 4, k up to 2, both distributions,
// both check modes, no fault injection.
func DefaultGrid() Grid {
	return Grid{
		Kernels: Kernels(),
		Classes: map[string][]string{
			"mvm":    {"S"},
			"euler":  {"2k"},
			"moldyn": {"2k"},
			"raw":    {"small", "large"},
		},
		Ps:      []int{1, 2, 4},
		Ks:      []int{1, 2},
		Dists:   []string{"block", "cyclic"},
		Engines: Engines,
		Checked: []bool{true, false},
		Chaos:   []string{""},
	}
}

// SmallGrid is the CI short sweep: two workload families and P up to 2 —
// small enough for 1–2 repeats inside a CI job while still crossing every
// engine.
func SmallGrid() Grid {
	return Grid{
		Kernels: []string{"mvm", "raw"},
		Classes: map[string][]string{
			"mvm": {"S"},
			"raw": {"tiny"},
		},
		Ps:      []int{1, 2},
		Ks:      []int{1, 2},
		Dists:   []string{"block", "cyclic"},
		Engines: Engines,
		Checked: []bool{true, false},
		Chaos:   []string{""},
	}
}

// AdaptiveGrid is the streaming amortization sweep: the adaptive kernel
// across delta fractions straddling the incremental-vs-full crossover.
// Its measurements justify service.DefaultFallbackFrac.
func AdaptiveGrid() Grid {
	return Grid{
		Kernels:    []string{"adaptive"},
		Classes:    map[string][]string{"adaptive": {"2k"}},
		Ps:         []int{2, 4},
		Ks:         []int{2},
		Dists:      []string{"cyclic"},
		Engines:    []string{EngineNative},
		Checked:    []bool{true},
		DeltaFracs: []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5},
	}
}

// Expand produces the runnable cells of the grid's cartesian product, in
// deterministic order, plus a skip record for every grid point an engine
// cannot legally execute. Malformed dimensions (unknown kernel, engine,
// class, distribution, unparsable chaos spec, out-of-range P or k) are
// configuration errors, not skips.
func (g Grid) Expand() ([]Cell, []benchfmt.Skip, error) {
	if len(g.Kernels) == 0 || len(g.Ps) == 0 || len(g.Ks) == 0 ||
		len(g.Dists) == 0 || len(g.Engines) == 0 || len(g.Checked) == 0 {
		return nil, nil, fmt.Errorf("sweep: grid has an empty dimension")
	}
	chaos := g.Chaos
	if len(chaos) == 0 {
		chaos = []string{""}
	}
	for _, spec := range chaos {
		if spec == "" {
			continue
		}
		if _, err := fault.ParseSpec(spec); err != nil {
			return nil, nil, fmt.Errorf("sweep: chaos spec %q: %w", spec, err)
		}
	}
	for _, e := range g.Engines {
		if !knownEngine(e) {
			return nil, nil, fmt.Errorf("sweep: unknown engine %q", e)
		}
	}
	for _, p := range g.Ps {
		if p < 1 || p > 64 {
			return nil, nil, fmt.Errorf("sweep: P = %d outside [1,64]", p)
		}
	}
	for _, k := range g.Ks {
		if k < 1 || k > 64 {
			return nil, nil, fmt.Errorf("sweep: k = %d outside [1,64]", k)
		}
	}
	for _, d := range g.Dists {
		if d != "block" && d != "cyclic" {
			return nil, nil, fmt.Errorf("sweep: unknown distribution %q (block | cyclic)", d)
		}
	}
	for _, f := range g.DeltaFracs {
		if f <= 0 || f > 1 {
			return nil, nil, fmt.Errorf("sweep: delta fraction %g outside (0,1]", f)
		}
	}

	var cells []Cell
	var skipped []benchfmt.Skip
	for _, kernel := range g.Kernels {
		def, ok := kernelRegistry[kernel]
		if !ok {
			return nil, nil, fmt.Errorf("sweep: unknown kernel %q", kernel)
		}
		classes := g.Classes[kernel]
		if len(classes) == 0 {
			classes = def.classes
		}
		// The delta-fraction axis applies to the adaptive kernel only:
		// each fraction becomes an incr/full cell pair. Other kernels get
		// one variant with the axis zeroed.
		fracs, modes := []float64{0}, []string{""}
		if kernel == "adaptive" {
			fracs = g.DeltaFracs
			if len(fracs) == 0 {
				fracs = []float64{0.05}
			}
			modes = []string{AdaptIncr, AdaptFull}
		}
		for _, class := range classes {
			if !contains(def.classes, class) {
				return nil, nil, fmt.Errorf("sweep: kernel %s has no class %q (have %v)", kernel, class, def.classes)
			}
			for _, engine := range g.Engines {
				for _, p := range g.Ps {
					for _, k := range g.Ks {
						for _, dist := range g.Dists {
							for _, checked := range g.Checked {
								for _, spec := range chaos {
									for _, frac := range fracs {
										for _, mode := range modes {
											c := Cell{
												Kernel: kernel, Class: class, Engine: engine,
												P: p, K: k, Dist: dist, Checked: checked, Chaos: spec,
												DeltaFrac: frac, Adapt: mode,
											}
											if reason := skipReason(c, def); reason != "" {
												skipped = append(skipped, benchfmt.Skip{ID: c.ID(), Reason: reason})
												continue
											}
											cells = append(cells, c)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, skipped, nil
}

func knownEngine(e string) bool {
	for _, n := range Engines {
		if n == e {
			return true
		}
	}
	return false
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// skipReason implements the legality rules: a non-empty return is the
// reason the grid point is recorded as skipped. First match wins, so a
// cell that is illegal several ways reports its most fundamental problem.
func skipReason(c Cell, def *kernelDef) string {
	if !def.engines[c.Engine] {
		return fmt.Sprintf("kernel %s does not support engine %s", c.Kernel, c.Engine)
	}
	if c.Chaos != "" && c.Engine != EngineDistributed {
		return "fault injection requires the distributed engine"
	}
	if c.Kernel == "adaptive" && !c.Checked {
		return "adaptive cells time schedule maintenance; the checked dimension does not apply"
	}
	switch c.Engine {
	case EngineDistributed:
		if c.P < 2 {
			return "distributed rotation needs P >= 2"
		}
		if !c.Checked {
			return "engine distributed has no proof-elided (unchecked) mode"
		}
	case EngineTreeFold:
		if c.K != 1 || c.Dist != "block" {
			return "tree-fold has no k/dist dimension; its canonical cell is k=1 block"
		}
		if reason := treeFoldUnlicensed(c.Kernel); reason != "" {
			return reason
		}
	case EngineInterp:
		if c.P != 1 || c.K != 1 || c.Dist != "block" {
			return "interp is sequential; its canonical cell is P=1 k=1 block"
		}
		if !c.Checked {
			return "engine interp has no proof-elided (unchecked) mode"
		}
	case EngineSim:
		if !c.Checked {
			return "engine sim models cost; the checked dimension does not apply"
		}
	}
	return ""
}

// KernelLicense reports the schedule license a named kernel's compiled
// form actually carries: the conjunction over its irregular plans, so a
// grant survives only if every irregular reduction in the kernel holds
// it. Raw workloads and kernels that fail to compile have no license —
// nil, which tuner consumers treat as "rotation only".
func KernelLicense(kernel string) *dataflow.License {
	u, err := unit(kernel)
	if err != nil {
		return nil
	}
	var lic *dataflow.License
	for _, p := range u.Plans {
		if p.Kind != codegen.Irregular || p.License == nil {
			continue
		}
		if lic == nil {
			cp := *p.License
			lic = &cp
			continue
		}
		lic.Rotation = lic.Rotation && p.License.Rotation
		lic.Tile = lic.Tile && p.License.Tile
		lic.TreeFold = lic.TreeFold && p.License.TreeFold
	}
	return lic
}

// treeFoldUnlicensed compiles the kernel's IRL form (cached) and reports
// why tree-fold execution is refused — a compile failure or an irregular
// plan whose schedule license does not carry the TreeFoldLegal grant.
// Empty means every irregular plan is licensed.
func treeFoldUnlicensed(kernel string) string {
	u, err := unit(kernel)
	if err != nil {
		return fmt.Sprintf("kernel %s has no tree-fold path: %v", kernel, err)
	}
	for _, p := range u.Plans {
		if p.Kind == codegen.Irregular && !p.License.TreeFold {
			return fmt.Sprintf("kernel %s plan %s: license %s does not grant tree-fold", kernel, p.Name, p.License.Level())
		}
	}
	return ""
}
