package sweep

import (
	"fmt"
	"math/rand"
	"sync"

	"irred/internal/codegen"
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// Dataset construction is deterministic in (kernel, class, seed) and
// cached for the life of the process: a sweep visits the same workload
// dozens of times across engines and strategies, and the generators
// (ClassW is half a million nonzeros) dominate cell setup otherwise.
// Cached objects are treated as immutable — every engine constructor in
// this package copies the state it mutates.
var (
	dataMu      sync.Mutex
	csrCache    = map[string]*sparse.CSR{}
	eulerCache  = map[string]*kernels.Euler{}
	moldynCache = map[string]*moldyn.System{}
	rawCache    = map[string]*rawSpec{}
	unitCache   = map[string]*unitEntry{}
)

type unitEntry struct {
	unit *codegen.Unit
	err  error
}

func mvmData(class string, seed int64) (*sparse.CSR, error) {
	var cl sparse.Class
	switch class {
	case "S":
		cl = sparse.ClassS
	case "W":
		cl = sparse.ClassW
	case "A":
		cl = sparse.ClassA
	case "B":
		cl = sparse.ClassB
	default:
		return nil, fmt.Errorf("sweep: mvm class %q (S | W | A | B)", class)
	}
	key := fmt.Sprintf("%s/%d", class, seed)
	dataMu.Lock()
	defer dataMu.Unlock()
	if m, ok := csrCache[key]; ok {
		return m, nil
	}
	m := sparse.Generate(cl, uint64(seed))
	csrCache[key] = m
	return m, nil
}

func eulerData(class string, seed int64) (*kernels.Euler, error) {
	var nodes, edges int
	switch class {
	case "2k":
		nodes, edges = mesh.Paper2K()
	case "10k":
		nodes, edges = mesh.Paper10K()
	default:
		return nil, fmt.Errorf("sweep: euler class %q (2k | 10k)", class)
	}
	key := fmt.Sprintf("%s/%d", class, seed)
	dataMu.Lock()
	defer dataMu.Unlock()
	if e, ok := eulerCache[key]; ok {
		return e, nil
	}
	e := kernels.NewEuler(mesh.Generate(nodes, edges, seed), seed)
	eulerCache[key] = e
	return e, nil
}

func moldynData(class string, seed int64) (*moldyn.System, error) {
	key := fmt.Sprintf("%s/%d", class, seed)
	dataMu.Lock()
	defer dataMu.Unlock()
	if s, ok := moldynCache[key]; ok {
		return s, nil
	}
	var sys *moldyn.System
	switch class {
	case "2k":
		sys = moldyn.Paper2K(seed)
	case "10k":
		sys = moldyn.Paper10K(seed)
	default:
		return nil, fmt.Errorf("sweep: moldyn class %q (2k | 10k)", class)
	}
	moldynCache[key] = sys
	return sys, nil
}

// rawSpec is a deterministic synthetic pair reduction (x[i1] += w,
// x[i2] -= w), the same shape the service's raw job path executes. The
// integral weights keep partial sums exactly representable.
type rawSpec struct {
	iters, elems int
	ind          [][]int32
	w            []float64
}

// rawSizes maps raw classes to (iterations, elements). "tiny" exists for
// tests and the CI short sweep.
var rawSizes = map[string][2]int{
	"tiny":  {240, 64},
	"small": {4096, 512},
	"large": {32768, 4096},
}

func rawData(class string, seed int64) (*rawSpec, error) {
	size, ok := rawSizes[class]
	if !ok {
		return nil, fmt.Errorf("sweep: raw class %q (tiny | small | large)", class)
	}
	key := fmt.Sprintf("%s/%d", class, seed)
	dataMu.Lock()
	defer dataMu.Unlock()
	if r, ok := rawCache[key]; ok {
		return r, nil
	}
	rng := rand.New(rand.NewSource(seed*2654435761 + 131))
	r := &rawSpec{iters: size[0], elems: size[1], ind: make([][]int32, 2)}
	for ref := range r.ind {
		r.ind[ref] = make([]int32, r.iters)
		for i := range r.ind[ref] {
			r.ind[ref][i] = int32(rng.Intn(r.elems))
		}
	}
	r.w = make([]float64, r.iters)
	for i := range r.w {
		r.w[i] = float64(1 + rng.Intn(9))
	}
	rawCache[key] = r
	return r, nil
}

// loop describes the raw reduction to the rts engines, carrying a scanned
// bounds proof so the unchecked dimension is available.
func (r *rawSpec) loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Proof: dataflow.IndirectionFacts("sweep raw pair reduction", r.elems, r.ind...),
		Cfg: inspector.Config{
			P: p, K: k,
			NumIters: r.iters,
			NumElems: r.elems,
			Dist:     dist,
		},
		Mode: rts.Reduce,
		Ind:  r.ind,
		Cost: rts.KernelCost{Flops: 2, IntOps: 4, IterArrays: 1},
	}
}

func (r *rawSpec) contribs(_, i int, out []float64) {
	out[0] = r.w[i]
	out[1] = -r.w[i]
}

// unit compiles (once per process) the IRL source of a named kernel for
// the tree-fold and interp engines, caching failures too so a broken
// source is reported per cell, not retried per cell.
func unit(kernel string) (*codegen.Unit, error) {
	def, ok := kernelRegistry[kernel]
	if !ok || def.irl == "" {
		return nil, fmt.Errorf("sweep: kernel %q has no compiled (IRL) form", kernel)
	}
	dataMu.Lock()
	defer dataMu.Unlock()
	if e, ok := unitCache[kernel]; ok {
		return e.unit, e.err
	}
	u, err := codegen.Compile(def.irl)
	unitCache[kernel] = &unitEntry{unit: u, err: err}
	return u, err
}

// newEnv binds class-sized kernel data onto a fresh interpreter
// environment over the unit's fissioned program — the same datasets the
// native cells run, so engines are compared on identical inputs.
func newEnv(kernel, class string, seed int64, u *codegen.Unit) (*interp.Env, error) {
	env := interp.NewEnv(u.Fissioned)
	switch kernel {
	case "mvm":
		m, err := mvmData(class, seed)
		if err != nil {
			return nil, err
		}
		env.SetParam("nnz", m.NNZ())
		env.SetParam("n", m.N)
		if err := env.BindInt("row", m.RowOfNZ()); err != nil {
			return nil, err
		}
		if err := env.BindInt("col", m.Col); err != nil {
			return nil, err
		}
		if err := env.BindFloat("a", m.Val); err != nil {
			return nil, err
		}
		x := make([]float64, m.N)
		for i := range x {
			x[i] = 1
		}
		if err := env.BindFloat("x", x); err != nil {
			return nil, err
		}
	case "euler":
		e, err := eulerData(class, seed)
		if err != nil {
			return nil, err
		}
		edges, nodes := e.Mesh.NumEdges(), e.Mesh.NumNodes
		ia := make([]int32, 2*edges)
		for i := 0; i < edges; i++ {
			ia[2*i], ia[2*i+1] = e.Mesh.I1[i], e.Mesh.I2[i]
		}
		env.SetParam("num_edges", edges)
		env.SetParam("num_nodes", nodes)
		if err := env.BindInt("ia", ia); err != nil {
			return nil, err
		}
		if err := env.BindFloat("w", e.W); err != nil {
			return nil, err
		}
		for c, name := range []string{"q1", "q2", "q3"} {
			q := make([]float64, nodes)
			for i := range q {
				q[i] = e.Q[3*i+c]
			}
			if err := env.BindFloat(name, q); err != nil {
				return nil, err
			}
		}
	case "moldyn":
		sys, err := moldynData(class, seed)
		if err != nil {
			return nil, err
		}
		inter, mol := sys.NumInteractions(), sys.N
		ia := make([]int32, 2*inter)
		for i := 0; i < inter; i++ {
			ia[2*i], ia[2*i+1] = sys.I1[i], sys.I2[i]
		}
		env.SetParam("num_inter", inter)
		env.SetParam("num_mol", mol)
		if err := env.BindInt("ia", ia); err != nil {
			return nil, err
		}
		for c, name := range []string{"px", "py", "pz"} {
			p := make([]float64, mol)
			for i := range p {
				p[i] = sys.Pos[3*i+c]
			}
			if err := env.BindFloat(name, p); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("sweep: kernel %q has no interpreter binding", kernel)
	}
	if err := env.Alloc(); err != nil {
		return nil, err
	}
	return env, nil
}
