package sweep

import (
	"testing"

	"irred/internal/service"
)

func testOpts(t *testing.T) Options {
	t.Helper()
	cache, err := service.NewCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	return Options{Steps: 2, Warmup: 1, Repeats: 3, TrimFrac: 0.2, Seed: 1, Cache: cache}
}

// The cell harness must attribute schedule-cache traffic: a fresh cache
// misses on the warmup run and hits on every later run of the same cell.
func TestRunCellNativeRawCacheTraffic(t *testing.T) {
	opt := testOpts(t)
	c := Cell{Kernel: "raw", Class: "tiny", Engine: EngineNative, P: 2, K: 2, Dist: "cyclic"}
	bc := RunCell(c, opt)
	if bc.Error != "" {
		t.Fatalf("cell error: %s", bc.Error)
	}
	if bc.Wall.Count != 3 {
		t.Fatalf("Wall.Count = %d, want 3", bc.Wall.Count)
	}
	if bc.Wall.Score() <= 0 || bc.P50MS <= 0 {
		t.Fatalf("no timing recorded: %+v", bc.Wall)
	}
	// 4 runs (1 warmup + 3 repeats): 1 inspector miss, 3 cache hits.
	if bc.CacheHits != 3 || bc.CacheMisses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 3/1", bc.CacheHits, bc.CacheMisses)
	}
	if bc.CacheHitRatio != 0.75 {
		t.Fatalf("cache hit ratio = %v, want 0.75", bc.CacheHitRatio)
	}
	if bc.PhaseMS["compute"] <= 0 {
		t.Fatalf("no compute span recorded: %v", bc.PhaseMS)
	}
	if bc.PhaseMS["inspect"] <= 0 {
		t.Fatalf("no inspector span recorded: %v", bc.PhaseMS)
	}
}

// Every engine must execute its canonical cell end to end.
func TestRunCellEngines(t *testing.T) {
	cells := []Cell{
		{Kernel: "mvm", Class: "S", Engine: EngineNative, P: 2, K: 1, Dist: "cyclic"},
		{Kernel: "euler", Class: "2k", Engine: EngineNative, P: 2, K: 2, Dist: "block", Checked: true},
		{Kernel: "moldyn", Class: "2k", Engine: EngineNative, P: 2, K: 1, Dist: "cyclic"},
		{Kernel: "mvm", Class: "S", Engine: EngineTreeFold, P: 2, K: 1, Dist: "block", Checked: true},
		{Kernel: "mvm", Class: "S", Engine: EngineInterp, P: 1, K: 1, Dist: "block", Checked: true},
		{Kernel: "mvm", Class: "S", Engine: EngineSim, P: 2, K: 1, Dist: "cyclic", Checked: true},
		{Kernel: "raw", Class: "tiny", Engine: EngineDistributed, P: 2, K: 2, Dist: "cyclic", Checked: true},
	}
	opt := testOpts(t)
	opt.Steps, opt.Warmup, opt.Repeats = 1, 0, 1
	for _, c := range cells {
		t.Run(c.ID(), func(t *testing.T) {
			bc := RunCell(c, opt)
			if bc.Error != "" {
				t.Fatalf("cell error: %s", bc.Error)
			}
			if bc.Wall.Count != 1 || bc.Wall.Score() <= 0 {
				t.Fatalf("no timing: %+v", bc.Wall)
			}
			if c.Engine == EngineSim && bc.SimSeconds <= 0 {
				t.Fatalf("sim cell recorded no modeled seconds: %+v", bc)
			}
		})
	}
}

// A chaos cell must survive injected faults through the distributed
// engine's recovery machinery and still record clean statistics.
func TestRunCellChaos(t *testing.T) {
	opt := testOpts(t)
	opt.Warmup, opt.Repeats = 0, 2
	c := Cell{
		Kernel: "raw", Class: "tiny", Engine: EngineDistributed,
		P: 2, K: 2, Dist: "cyclic", Checked: true,
		Chaos: "seed=7,drop=0.05,dup=0.05",
	}
	bc := RunCell(c, opt)
	if bc.Error != "" {
		t.Fatalf("chaos cell error: %s", bc.Error)
	}
	if bc.Wall.Count != 2 {
		t.Fatalf("Wall.Count = %d, want 2", bc.Wall.Count)
	}
	if bc.Chaos == "" {
		t.Fatal("chaos spec not recorded on the cell")
	}
}

// A cell that cannot execute is recorded as errored, never panics the
// sweep.
func TestRunCellErrorRecorded(t *testing.T) {
	bc := RunCell(Cell{Kernel: "raw", Class: "huge", Engine: EngineNative, P: 2, K: 1, Dist: "block"}, testOpts(t))
	if bc.Error == "" {
		t.Fatal("unknown class must surface as a cell error")
	}
	if bc.Wall.Count != 0 {
		t.Fatalf("errored cell carries stats: %+v", bc.Wall)
	}
}

func TestRunSummary(t *testing.T) {
	g := Grid{
		Kernels: []string{"raw"},
		Classes: map[string][]string{"raw": {"tiny"}},
		Ps:      []int{1, 2},
		Ks:      []int{1},
		Dists:   []string{"cyclic"},
		Engines: []string{EngineNative, EngineDistributed},
		Checked: []bool{true},
	}
	opt := testOpts(t)
	var lines int
	opt.Progress = func(string, ...any) { lines++ }
	s, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// native p1, native p2, distributed p2; distributed p1 skipped.
	if len(s.Cells) != 3 {
		t.Fatalf("cells = %d, want 3: %+v", len(s.Cells), s.Cells)
	}
	if len(s.Skipped) != 1 {
		t.Fatalf("skips = %d, want 1: %v", len(s.Skipped), s.Skipped)
	}
	for _, c := range s.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s: %s", c.ID, c.Error)
		}
	}
	if s.Schema == "" {
		t.Fatal("summary carries no schema")
	}
	if lines != 3 {
		t.Fatalf("progress lines = %d, want 3", lines)
	}
}
