package sweep

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"irred/internal/benchfmt"
)

func emitSummary() *benchfmt.Summary {
	return &benchfmt.Summary{
		Stamp: benchfmt.Stamp{
			Schema: benchfmt.Schema, Date: "2026-08-08",
			Commit: "deadbeefcafe", GoVersion: "go1.22", NumCPU: 4,
		},
		Cells: []benchfmt.Cell{
			{
				ID: "raw/tiny/native/p2/k1/cyclic/unchecked", Kernel: "raw", Class: "tiny",
				Engine: "native", P: 2, K: 1, Dist: "cyclic",
				Steps: 2, Warmup: 1, Repeats: 3,
				Wall:  benchfmt.NewStats([]float64{1.5, 1.6, 1.7}, 0.2),
				P50MS: 1.6, P95MS: 1.7, P99MS: 1.7,
				PhaseMS:   map[string]float64{"compute": 2.0, "wait": 0.5},
				CacheHits: 3, CacheMisses: 1, CacheHitRatio: 0.75,
			},
			{
				ID: "mvm/S/sim/p4/k2/block/checked", Kernel: "mvm", Class: "S",
				Engine: "sim", P: 4, K: 2, Dist: "block", Checked: true,
				SimSeconds: 0.0123,
				Wall:       benchfmt.NewStats([]float64{9}, 0),
			},
			{ID: "raw/tiny/distributed/p2/k1/cyclic/checked", Error: "boom"},
		},
	}
}

func TestWriteCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "sweep.csv")
	if err := WriteCSV(path, emitSummary()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header + 3", len(rows))
	}
	if rows[0][0] != "id" || rows[0][len(rows[0])-1] != "error" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "raw/tiny/native/p2/k1/cyclic/unchecked" {
		t.Fatalf("first row = %v", rows[1])
	}
	// Every row is rectangular under the declared header.
	for i, r := range rows {
		if len(r) != len(csvHeader) {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), len(csvHeader))
		}
	}
	if rows[3][len(csvHeader)-1] != "boom" {
		t.Fatalf("errored cell row = %v", rows[3])
	}
}

func TestWriteJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	s := emitSummary()
	if err := WriteJSONL(path, s); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var n int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec struct {
			Commit string        `json:"commit"`
			Date   string        `json:"date"`
			Cell   benchfmt.Cell `json:"cell"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		// Every JSONL record is stamped with the build identity.
		if rec.Commit != "deadbeefcafe" || rec.Date != "2026-08-08" {
			t.Fatalf("line %d missing stamp: %+v", n, rec)
		}
		if rec.Cell.ID != s.Cells[n].ID {
			t.Fatalf("line %d cell = %q, want %q", n, rec.Cell.ID, s.Cells[n].ID)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("lines = %d, want 3", n)
	}
}
