// Package sweep is the auto-tuning benchmark harness: it expands a grid
// of (kernel, class, engine, P, k, distribution, checked, chaos) points,
// runs every legal cell through the matching execution engine, and
// aggregates wall time, per-phase span budgets, schedule-cache traffic
// and latency percentiles into a benchfmt.Summary — the persisted BENCH
// trajectory that the CI regression gate (benchfmt.Compare) and the
// runtime tuner (rts.Tuner) both consume.
//
// The harness measures the same code paths production uses: named
// kernels run through internal/kernels onto the rts engines, schedules
// are served through the internal/service schedule cache, tree-fold and
// interpreter cells go through the codegen/interp pipeline, and sim
// cells run the EARTH machine model. Grid points an engine cannot
// legally execute (tree-fold without a license grant, chaos outside the
// distributed engine, ...) are recorded as skips with the rule that
// refused them, never silently dropped.
package sweep

import (
	"fmt"
	"strconv"

	"irred/internal/inspector"
)

// Engine names, matching the benchfmt cell vocabulary.
const (
	EngineNative      = "native"      // rts.Native: goroutines + rotation schedule
	EngineDistributed = "distributed" // rts.Distributed: message passing, chaos-capable
	EngineTreeFold    = "treefold"    // rts.TreeFold via the codegen license path
	EngineInterp      = "interp"      // sequential tree-walking interpreter
	EngineSim         = "sim"         // EARTH machine model (modeled MANNA seconds)
)

// Engines lists every engine the harness knows, in canonical order.
var Engines = []string{EngineNative, EngineDistributed, EngineTreeFold, EngineInterp, EngineSim}

// Adaptation modes of the "adaptive" kernel: which schedule-maintenance
// path an adaptive cell measures after each mesh refinement step.
const (
	AdaptIncr = "incr" // Schedule.Update on the resident schedules
	AdaptFull = "full" // LightInspector rebuild from scratch
)

// Cell is one grid point: a workload (kernel + class) bound to an
// execution strategy (engine, P, k, distribution, bounds-check mode,
// optional fault-injection spec).
type Cell struct {
	Kernel  string
	Class   string
	Engine  string
	P       int
	K       int
	Dist    string // "block" | "cyclic"
	Checked bool   // true: per-write target validation on; false: proof-elided
	Chaos   string // fault.ParseSpec syntax; "" = no injection

	// DeltaFrac and Adapt apply to the "adaptive" kernel only: the
	// fraction of edges each adaptation step rewires, and which
	// schedule-maintenance path the cell times (AdaptIncr | AdaptFull).
	DeltaFrac float64
	Adapt     string
}

// ID renders the canonical cell key used across BENCH files:
// kernel/class/engine/pN/kN/dist/checked|unchecked[/chaos=spec]
// [/delta=frac/incr|full].
func (c Cell) ID() string {
	chk := "unchecked"
	if c.Checked {
		chk = "checked"
	}
	id := fmt.Sprintf("%s/%s/%s/p%d/k%d/%s/%s", c.Kernel, c.Class, c.Engine, c.P, c.K, c.Dist, chk)
	if c.Chaos != "" {
		id += "/chaos=" + c.Chaos
	}
	if c.Adapt != "" {
		id += "/delta=" + strconv.FormatFloat(c.DeltaFrac, 'g', -1, 64) + "/" + c.Adapt
	}
	return id
}

// dist parses the cell's distribution name.
func (c Cell) dist() (inspector.Dist, error) {
	switch c.Dist {
	case "block":
		return inspector.Block, nil
	case "cyclic":
		return inspector.Cyclic, nil
	default:
		return 0, fmt.Errorf("sweep: unknown distribution %q (block | cyclic)", c.Dist)
	}
}
