// Package core is the public face of the library: the paper's execution
// strategy for irregular reductions behind a small API.
//
// A Reduction describes an irregular reduction loop (Figure 1 of the
// paper): NumIters iterations, each updating reduction elements through one
// or more indirection arrays. A Strategy names the machine shape — P
// processors, unrolling factor k, and the iteration distribution (the
// paper's 1c/2c/4c/2b variants). The library then offers:
//
//   - Schedules: run the LightInspector and obtain the per-processor phase
//     programs (no interprocessor communication needed);
//   - RunNative: execute the reduction on real goroutines with rotating
//     portion ownership;
//   - Simulate: execute on the modelled EARTH/MANNA multithreaded machine
//     and obtain cycle-accurate-style timings, as the paper's evaluation
//     did;
//   - CompileIRL: compile an IRL source program (sections, reference
//     groups, loop fission) into runnable plans.
package core

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/machine"
	"irred/internal/rts"
	"irred/internal/service"
	"irred/internal/sim"
)

// Dist is an iteration distribution.
type Dist = inspector.Dist

// Distribution values.
const (
	Block  = inspector.Block
	Cyclic = inspector.Cyclic
)

// Strategy is a parallel execution configuration. The paper's named
// variants are 1c = {K:1, Cyclic}, 2c = {K:2, Cyclic}, 4c = {K:4, Cyclic},
// 2b = {K:2, Block}.
type Strategy struct {
	P    int
	K    int
	Dist Dist
}

// Strategy1C returns the paper's "1c" strategy for p processors.
func Strategy1C(p int) Strategy { return Strategy{P: p, K: 1, Dist: Cyclic} }

// Strategy2C returns the paper's "2c" strategy (its overall best).
func Strategy2C(p int) Strategy { return Strategy{P: p, K: 2, Dist: Cyclic} }

// Strategy4C returns the paper's "4c" strategy.
func Strategy4C(p int) Strategy { return Strategy{P: p, K: 4, Dist: Cyclic} }

// Strategy2B returns the paper's "2b" strategy (k=2, block distribution).
func Strategy2B(p int) Strategy { return Strategy{P: p, K: 2, Dist: Block} }

// String renders the paper's shorthand.
func (s Strategy) String() string {
	d := "c"
	if s.Dist == Block {
		d = "b"
	}
	return fmt.Sprintf("%d%s@%d", s.K, d, s.P)
}

// Reduction describes one irregular reduction loop.
type Reduction struct {
	NumIters int
	NumElems int
	Ind      [][]int32
	// Comp is the number of values per reduction element (3 for a force
	// vector); defaults to 1.
	Comp int
	// Cost describes per-iteration work to the simulator; optional — a
	// generic default is used when zero.
	Cost rts.KernelCost
}

// NewReduction builds a reduction description over the given indirection
// arrays (each of length numIters with values in [0, numElems)).
func NewReduction(numIters, numElems int, ind ...[]int32) *Reduction {
	return &Reduction{NumIters: numIters, NumElems: numElems, Ind: ind}
}

// loop lowers to the runtime representation.
func (r *Reduction) loop(s Strategy) *rts.Loop {
	cost := r.Cost
	if cost.Flops == 0 && cost.IntOps == 0 {
		cost = rts.KernelCost{Flops: 10, IntOps: 4, IterArrays: 1}
	}
	if r.Comp > 1 {
		cost.Comp = r.Comp
	}
	return &rts.Loop{
		Cfg: inspector.Config{
			P: s.P, K: s.K,
			NumIters: r.NumIters,
			NumElems: r.NumElems,
			Dist:     s.Dist,
		},
		Mode: rts.Reduce,
		Ind:  r.Ind,
		Cost: cost,
	}
}

// Schedules runs the LightInspector for every processor of the strategy.
func (r *Reduction) Schedules(s Strategy) ([]*inspector.Schedule, error) {
	return r.loop(s).Schedules()
}

// Contribs computes the per-iteration contribution of iteration i for each
// indirection reference: out has len(Ind)*Comp slots, reference-major.
// p identifies the executing processor for per-processor scratch state.
type Contribs = rts.ContribFunc

// RunNative executes the reduction for steps sweeps on real goroutines and
// returns the reduction array (len NumElems*Comp). update, when non-nil,
// runs per processor between sweeps under a barrier.
func (r *Reduction) RunNative(s Strategy, contribs Contribs, update rts.UpdateFunc, steps int) ([]float64, error) {
	return r.RunNativeContext(context.Background(), s, contribs, update, steps)
}

// RunNativeContext is RunNative with cancellation: when ctx is cancelled or
// its deadline expires, every worker goroutine stops at its next phase
// boundary and the call returns ctx.Err().
func (r *Reduction) RunNativeContext(ctx context.Context, s Strategy, contribs Contribs, update rts.UpdateFunc, steps int) ([]float64, error) {
	n, err := rts.NewNative(r.loop(s))
	if err != nil {
		return nil, err
	}
	n.Contribs = contribs
	n.Update = update
	if err := n.RunContext(ctx, steps); err != nil {
		return nil, err
	}
	return n.X, nil
}

// Report summarizes a simulated execution.
type Report struct {
	Strategy Strategy
	Steps    int

	Cycles  sim.Time
	Seconds float64

	SeqCycles  sim.Time
	SeqSeconds float64
	Speedup    float64

	InspectorCycles sim.Time
	MsgsPerStep     float64
	BytesPerStep    float64
	MaxPhaseIters   int
	AvgPhaseIters   float64
}

// Simulate runs the reduction for steps timesteps on the modelled EARTH
// machine and reports timing against the sequential baseline.
func (r *Reduction) Simulate(s Strategy, steps int) (*Report, error) {
	l := r.loop(s)
	opt := rts.SimOptions{Steps: steps}
	res, err := rts.RunSim(l, opt)
	if err != nil {
		return nil, err
	}
	seqC, seqS := rts.RunSequentialSim(l, opt)
	return &Report{
		Strategy:        s,
		Steps:           steps,
		Cycles:          res.Cycles,
		Seconds:         res.Seconds,
		SeqCycles:       seqC,
		SeqSeconds:      seqS,
		Speedup:         float64(seqC) / float64(res.Cycles),
		InspectorCycles: res.InspectorCycles,
		MsgsPerStep:     res.MsgsPerStep,
		BytesPerStep:    res.BytesPerStep,
		MaxPhaseIters:   res.MaxPhaseIters,
		AvgPhaseIters:   res.AvgPhaseIters,
	}, nil
}

// Machine returns the default modelled machine parameters (MANNA, 50 MHz
// i860XP nodes), for callers that want to inspect or derive costs.
func Machine() (machine.CostModel, machine.Network) {
	return machine.MANNA(), machine.MANNANet()
}

// CompileIRL compiles an IRL source program through the full Section 4
// pipeline: parsing, section analysis, reference grouping, loop fission,
// and plan generation.
func CompileIRL(src string) (*codegen.Unit, error) {
	return codegen.Compile(src)
}

// Serving layer: reduction-as-a-service re-exports. The service turns the
// paper's amortization (inspector once, executor ~100 times) into a
// long-running daemon with a cross-request schedule cache; see
// internal/service and cmd/irredd.
type (
	// Job describes one reduction job submitted to the service: a named
	// kernel over a generated dataset, or raw indirection arrays plus a
	// contribution spec.
	Job = service.JobSpec
	// JobResult is a job's wire status, including its result when done.
	JobResult = service.JobStatus
	// ServeOptions configures the serving layer (workers, queue bound,
	// schedule-cache size and persistence directory).
	ServeOptions = service.Options
)

// Serve runs the reduction service's HTTP daemon on addr until ctx is
// cancelled, with graceful drain of in-flight jobs. It is the library
// entry point behind cmd/irredd.
func Serve(ctx context.Context, addr string, opt ServeOptions) error {
	svc, err := service.New(opt)
	if err != nil {
		return err
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), service.ShutdownGrace)
		defer cancel()
		return srv.Shutdown(shCtx)
	case err := <-errc:
		return err
	}
}

// UpdateSchedules incrementally revises previously built schedules after
// the reduction's indirection arrays changed for the given iterations (the
// adaptive-problem path; see inspector.Schedule.Update). The reduction's
// Ind slices must already hold the new values.
func (r *Reduction) UpdateSchedules(scheds []*inspector.Schedule, changed []int32) error {
	for _, s := range scheds {
		if err := s.Update(changed, r.Ind...); err != nil {
			return err
		}
	}
	return nil
}
