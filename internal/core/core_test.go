package core

import (
	"math"
	"math/rand"
	"testing"
)

func randReduction(rng *rand.Rand, iters, elems int) *Reduction {
	i1 := make([]int32, iters)
	i2 := make([]int32, iters)
	for i := range i1 {
		i1[i] = int32(rng.Intn(elems))
		i2[i] = int32(rng.Intn(elems))
	}
	return NewReduction(iters, elems, i1, i2)
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"1c@8":  Strategy1C(8),
		"2c@32": Strategy2C(32),
		"4c@4":  Strategy4C(4),
		"2b@16": Strategy2B(16),
	}
	for want, s := range cases {
		if s.String() != want {
			t.Fatalf("%v renders %q, want %q", s, s.String(), want)
		}
	}
}

func TestRunNativeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randReduction(rng, 400, 67)
	contribs := func(_, i int, out []float64) {
		out[0] = float64(i) + 1
		out[1] = 0.5 * float64(i)
	}
	x, err := r.RunNative(Strategy2C(4), contribs, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, r.NumElems)
	for i := 0; i < r.NumIters; i++ {
		want[r.Ind[0][i]] += float64(i) + 1
		want[r.Ind[1][i]] += 0.5 * float64(i)
	}
	for e := range want {
		if math.Abs(x[e]-want[e]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", e, x[e], want[e])
		}
	}
}

func TestSchedulesCoverIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randReduction(rng, 300, 50)
	s := Strategy2B(4)
	scheds, err := r.Schedules(s)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sch := range scheds {
		if err := sch.Check(r.Ind...); err != nil {
			t.Fatal(err)
		}
		total += sch.NumIters()
	}
	if total != r.NumIters {
		t.Fatalf("schedules cover %d iterations, want %d", total, r.NumIters)
	}
}

func TestSimulateReportsSpeedup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randReduction(rng, 5000, 800)
	rep, err := r.Simulate(Strategy2C(8), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 1 {
		t.Fatalf("8-processor speedup = %v", rep.Speedup)
	}
	if rep.Cycles <= 0 || rep.SeqCycles <= rep.Cycles {
		t.Fatalf("cycles: par %d seq %d", rep.Cycles, rep.SeqCycles)
	}
	if rep.InspectorCycles <= 0 {
		t.Fatal("inspector cost missing")
	}
}

func TestSimulateCommunicationIndependence(t *testing.T) {
	// The core property: traffic identical across different indirections.
	a, err := randReduction(rand.New(rand.NewSource(4)), 2000, 256).Simulate(Strategy2C(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := randReduction(rand.New(rand.NewSource(99)), 2000, 256).Simulate(Strategy2C(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.MsgsPerStep != b.MsgsPerStep || a.BytesPerStep != b.BytesPerStep {
		t.Fatal("communication depends on indirection contents")
	}
}

func TestCompileIRLRoundTrip(t *testing.T) {
	u, err := CompileIRL(`
param n, m
array ia[n] int
array x[m]
loop i = 0, n { x[ia[i]] += 1 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 {
		t.Fatalf("plans = %d", len(u.Plans))
	}
}

func TestMultiComponentNative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randReduction(rng, 200, 40)
	r.Comp = 3
	contribs := func(_, i int, out []float64) {
		for j := range out {
			out[j] = float64(i + j)
		}
	}
	x, err := r.RunNative(Strategy1C(3), contribs, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != r.NumElems*3 {
		t.Fatalf("x len = %d", len(x))
	}
}

func TestUpdateSchedulesAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := randReduction(rng, 250, 48)
	s := Strategy2C(3)
	scheds, err := r.Schedules(s)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate a handful of entries and update in place.
	changed := []int32{3, 57, 101, 200}
	for _, i := range changed {
		r.Ind[0][i] = (r.Ind[0][i] + 7) % 48
		r.Ind[1][i] = (r.Ind[1][i] + 11) % 48
	}
	if err := r.UpdateSchedules(scheds, changed); err != nil {
		t.Fatal(err)
	}
	for p, sch := range scheds {
		if err := sch.Check(r.Ind...); err != nil {
			t.Fatalf("proc %d after update: %v", p, err)
		}
	}
}
