package kernels

import "math"

// Physical diagnostics used by examples and tests to confirm that a
// parallel execution is not just numerically close to the sequential one
// but physically sensible.

// KineticEnergy computes 1/2 * sum v^2 over 3-component velocities (unit
// masses, as in the moldyn benchmark).
func KineticEnergy(vel []float64) float64 {
	var e float64
	for _, v := range vel {
		e += v * v
	}
	return e / 2
}

// Momentum sums a 3-component vector field (velocities or forces).
func Momentum(v []float64) [3]float64 {
	var out [3]float64
	for i := 0; i+2 < len(v); i += 3 {
		out[0] += v[i]
		out[1] += v[i+1]
		out[2] += v[i+2]
	}
	return out
}

// LJPotential computes the Lennard-Jones potential energy of a system's
// interaction list (sigma = epsilon = 1), the counterpart of the force
// computation in the moldyn kernel.
func (m *Moldyn) LJPotential(pos []float64) float64 {
	var u float64
	for i := range m.Sys.I1 {
		a, b := int(m.Sys.I1[i]), int(m.Sys.I2[i])
		var r2 float64
		for c := 0; c < 3; c++ {
			d := pos[3*a+c] - pos[3*b+c]
			if d > m.Sys.Box/2 {
				d -= m.Sys.Box
			} else if d < -m.Sys.Box/2 {
				d += m.Sys.Box
			}
			r2 += d * d
		}
		if r2 < 1e-12 {
			continue
		}
		inv6 := 1 / (r2 * r2 * r2)
		u += 4 * (inv6*inv6 - inv6)
	}
	return u
}

// ResidualNorm computes the L2 norm of an euler residual accumulation —
// the quantity a CFD solver drives toward zero.
func ResidualNorm(res []float64) float64 {
	var s float64
	for _, v := range res {
		s += v * v
	}
	return math.Sqrt(s)
}
