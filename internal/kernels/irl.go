package kernels

// IRL sources for the paper's kernels, so the compiler pipeline (Section 4
// analysis, fission, codegen) can be exercised on the real loop shapes and
// cross-checked against the hand-wired Go kernels.

// EulerIRL is the euler flux sweep: three residual components updated
// through both columns of the edge array, reading the endpoint states —
// exactly the Figure 1 shape with a three-array reference group. All three
// residual arrays share the indirection set {ia(*,0), ia(*,1)}, so the
// compiler must place them in ONE reference group (no fission) and pack
// them as components of a single rotated array.
const EulerIRL = `
param num_edges, num_nodes
array ia[num_edges, 2] int
array w[num_edges]
array q1[num_nodes]
array q2[num_nodes]
array q3[num_nodes]
array r1[num_nodes]
array r2[num_nodes]
array r3[num_nodes]

loop i = 0, num_edges {
    a1 = 0.5 * (q1[ia[i, 0]] + q1[ia[i, 1]])
    j1 = q1[ia[i, 0]] - q1[ia[i, 1]]
    f1 = w[i] * (a1 * a1 * 0.25 + j1 * 0.75 + a1 * 0.5)
    a2 = 0.5 * (q2[ia[i, 0]] + q2[ia[i, 1]])
    j2 = q2[ia[i, 0]] - q2[ia[i, 1]]
    f2 = w[i] * (a2 * a2 * 0.25 + j2 * 0.75 + a2 * 0.5)
    a3 = 0.5 * (q3[ia[i, 0]] + q3[ia[i, 1]])
    j3 = q3[ia[i, 0]] - q3[ia[i, 1]]
    f3 = w[i] * (a3 * a3 * 0.25 + j3 * 0.75 + a3 * 0.5)
    r1[ia[i, 0]] += f1
    r1[ia[i, 1]] -= f1
    r2[ia[i, 0]] += f2
    r2[ia[i, 1]] -= f2
    r3[ia[i, 0]] += f3
    r3[ia[i, 1]] -= f3
}
`

// MVMIRL is sparse matrix-vector multiply in its reduction formulation:
// iterating over nonzeros, y[row[i]] accumulates a[i]*x[col[i]]. The
// compiler classifies y as a reduction through row(*) and x as an
// irregular read through col(*) — the dual of the paper's gather
// formulation (which rotates x); both compute the same y.
const MVMIRL = `
param nnz, n
array row[nnz] int
array col[nnz] int
array a[nnz]
array x[n]
array y[n]

loop i = 0, nnz {
    y[row[i]] += a[i] * x[col[i]]
}
`

// MinredIRL is a lightest-incident-edge sweep: best[v] ends up holding
// the minimum weight over the edges incident to node v. The first loop
// seeds best with a sentinel above every weight (min's identity is +inf,
// so unseeded elements would clamp everything to 0 — IRL019's finding);
// the second folds with min=, which the algebra engine licenses for
// tree-fold (min is associative, commutative and idempotent, and exact
// under reordering).
const MinredIRL = `
param num_edges, num_nodes
array e[num_edges] int
array w[num_edges]
array best[num_nodes]

loop j = 0, num_nodes {
    best[j] = 1000000
}

loop i = 0, num_edges {
    best[e[i]] min= w[i]
}
`

// MoldynIRL is the open-boundary Lennard-Jones force sweep (the periodic
// minimum-image correction needs control flow IRL deliberately lacks, so
// the IRL variant is the free-space force law; the paper's loop class has
// no conditionals either). Three force components, equal and opposite at
// both endpoints, one reference group.
const MoldynIRL = `
param num_inter, num_mol
array ia[num_inter, 2] int
array px[num_mol]
array py[num_mol]
array pz[num_mol]
array fx[num_mol]
array fy[num_mol]
array fz[num_mol]

loop i = 0, num_inter {
    dx = px[ia[i, 0]] - px[ia[i, 1]]
    dy = py[ia[i, 0]] - py[ia[i, 1]]
    dz = pz[ia[i, 0]] - pz[ia[i, 1]]
    r2 = dx * dx + dy * dy + dz * dz
    inv2 = 1 / r2
    inv6 = inv2 * inv2 * inv2
    s = 24 * inv2 * inv6 * (2 * inv6 - 1)
    fx[ia[i, 0]] += s * dx
    fx[ia[i, 1]] -= s * dx
    fy[ia[i, 0]] += s * dy
    fy[ia[i, 1]] -= s * dy
    fz[ia[i, 0]] += s * dz
    fz[ia[i, 1]] -= s * dz
}
`
