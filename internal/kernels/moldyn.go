package kernels

import (
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/moldyn"
	"irred/internal/rts"
)

// Moldyn is the molecular-dynamics kernel (derived from the paper's
// reference [14]): the non-bonded force loop sweeps the interaction list,
// computes a Lennard-Jones-style force from the two molecules' positions,
// and accumulates equal and opposite contributions into both molecules'
// force vectors. A regular per-molecule loop integrates velocities and
// positions.
type Moldyn struct {
	Sys *moldyn.System
	Dt  float64
}

// moldynCost: the LJ force evaluation (~45 flops with the minimum-image
// logic), two 3-component position reads, a 3-component force reduction,
// the leapfrog update, and a per-step position refresh.
var moldynCost = rts.KernelCost{
	Flops:               45,
	IntOps:              8,
	IterArrays:          0,
	NodeArrays:          3,
	Comp:                3,
	UpdateFlopsPerElem:  12,
	UpdateArraysPerElem: 9,
	BcastComp:           3,
}

// NewMoldyn wraps a generated system.
func NewMoldyn(sys *moldyn.System) *Moldyn {
	return &Moldyn{Sys: sys, Dt: 1e-4}
}

// ljForce computes the pair force on molecule a due to b (minimum image)
// into out[0:3]. Shared by the sequential and parallel paths.
func ljForce(pos []float64, box float64, a, b int, out []float64) {
	var d [3]float64
	var r2 float64
	for c := 0; c < 3; c++ {
		dd := pos[3*a+c] - pos[3*b+c]
		if dd > box/2 {
			dd -= box
		} else if dd < -box/2 {
			dd += box
		}
		d[c] = dd
		r2 += dd * dd
	}
	if r2 < 1e-12 {
		out[0], out[1], out[2] = 0, 0, 0
		return
	}
	inv2 := 1.0 / r2
	inv6 := inv2 * inv2 * inv2
	f := 24 * inv2 * inv6 * (2*inv6 - 1) // LJ with sigma = epsilon = 1
	for c := 0; c < 3; c++ {
		out[c] = f * d[c]
	}
}

// Loop describes the force sweep to the runtime, carrying a scanned
// bounds proof over the interaction endpoints when they are all in range.
func (m *Moldyn) Loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Proof: dataflow.IndirectionFacts("moldyn force sweep", m.Sys.N, m.Sys.I1, m.Sys.I2),
		Cfg: inspector.Config{
			P: p, K: k,
			NumIters: m.Sys.NumInteractions(),
			NumElems: m.Sys.N,
			Dist:     dist,
		},
		Mode: rts.Reduce,
		Ind:  [][]int32{m.Sys.I1, m.Sys.I2},
		Cost: moldynCost,
	}
}

// SequentialStep runs one reference timestep over pos/vel with force
// accumulator f (zeroed on entry and exit).
func (m *Moldyn) SequentialStep(pos, vel, f []float64) {
	var fv [3]float64
	for i := range m.Sys.I1 {
		a, b := int(m.Sys.I1[i]), int(m.Sys.I2[i])
		ljForce(pos, m.Sys.Box, a, b, fv[:])
		for c := 0; c < 3; c++ {
			f[3*a+c] += fv[c]
			f[3*b+c] -= fv[c]
		}
	}
	for j := range pos {
		vel[j] += m.Dt * f[j]
		pos[j] += m.Dt * vel[j]
		f[j] = 0
	}
}

// RunSequential advances copies of the system state for steps timesteps
// and returns final positions and velocities.
func (m *Moldyn) RunSequential(steps int) (pos, vel []float64) {
	pos = append([]float64(nil), m.Sys.Pos...)
	vel = append([]float64(nil), m.Sys.Vel...)
	f := make([]float64, len(pos))
	for s := 0; s < steps; s++ {
		m.SequentialStep(pos, vel, f)
	}
	return pos, vel
}

// NewNative wires the kernel onto the native engine. The Native's X is the
// force array; positions and velocities live in the returned slices.
func (m *Moldyn) NewNative(p, k int, dist inspector.Dist) (*rts.Native, []float64, []float64, error) {
	return m.NewNativeFrom(nil, p, k, dist)
}

// NewNativeFrom is NewNative over pre-built schedules (e.g. served from a
// schedule cache); a nil scheds runs the LightInspector as NewNative does.
func (m *Moldyn) NewNativeFrom(scheds []*inspector.Schedule, p, k int, dist inspector.Dist) (*rts.Native, []float64, []float64, error) {
	l := m.Loop(p, k, dist)
	n, err := newNative(l, scheds)
	if err != nil {
		return nil, nil, nil, err
	}
	pos := append([]float64(nil), m.Sys.Pos...)
	vel := append([]float64(nil), m.Sys.Vel...)
	n.Contribs = func(_, i int, out []float64) {
		a, b := int(m.Sys.I1[i]), int(m.Sys.I2[i])
		var fv [3]float64
		ljForce(pos, m.Sys.Box, a, b, fv[:])
		for c := 0; c < 3; c++ {
			out[c] = fv[c]
			out[3+c] = -fv[c]
		}
	}
	n.Update = func(proc, step int) {
		lo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, 0))
		_, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, l.Cfg.K-1))
		for mol := lo; mol < hi; mol++ {
			for c := 0; c < 3; c++ {
				j := 3*mol + c
				vel[j] += m.Dt * n.X[j]
				pos[j] += m.Dt * vel[j]
				n.X[j] = 0
			}
		}
	}
	return n, pos, vel, nil
}
