package kernels

import (
	"math"
	"testing"

	"irred/internal/inspector"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sparse"
)

func maxRelDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / (1 + math.Abs(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestEulerNativeMatchesSequential(t *testing.T) {
	m := mesh.Generate(400, 2400, 1)
	e := NewEuler(m, 2)
	const steps = 5
	want := e.RunSequential(steps)
	for _, p := range []int{1, 2, 4} {
		for _, k := range []int{1, 2} {
			for _, d := range []inspector.Dist{inspector.Block, inspector.Cyclic} {
				n, q, err := e.NewNative(p, k, d)
				if err != nil {
					t.Fatal(err)
				}
				if err := n.Run(steps); err != nil {
					t.Fatal(err)
				}
				if diff := maxRelDiff(q, want); diff > 1e-10 {
					t.Fatalf("euler P=%d k=%d %v: max rel diff %.2e", p, k, d, diff)
				}
			}
		}
	}
}

func TestMoldynNativeMatchesSequential(t *testing.T) {
	sys := moldyn.Generate(4, 1, 0.02, 3)
	md := NewMoldyn(sys)
	const steps = 4
	wantPos, wantVel := md.RunSequential(steps)
	for _, p := range []int{1, 3, 4} {
		for _, k := range []int{1, 2} {
			n, pos, vel, err := md.NewNative(p, k, inspector.Cyclic)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Run(steps); err != nil {
				t.Fatal(err)
			}
			if d := maxRelDiff(pos, wantPos); d > 1e-10 {
				t.Fatalf("moldyn P=%d k=%d: pos diff %.2e", p, k, d)
			}
			if d := maxRelDiff(vel, wantVel); d > 1e-10 {
				t.Fatalf("moldyn P=%d k=%d: vel diff %.2e", p, k, d)
			}
		}
	}
}

func TestMVMNativeMatchesSequential(t *testing.T) {
	a := sparse.Generate(sparse.Class{Name: "t", N: 300, NNZ: 3000}, 0)
	mv := NewMVM(a)
	const steps = 4
	want := mv.RunSequential(steps)
	for _, p := range []int{1, 2, 4} {
		for _, k := range []int{1, 2, 4} {
			n, err := mv.NewNative(p, k, inspector.Block)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Run(steps); err != nil {
				t.Fatal(err)
			}
			if d := maxRelDiff(n.X, want); d > 1e-10 {
				t.Fatalf("mvm P=%d k=%d: diff %.2e", p, k, d)
			}
		}
	}
}

func TestEulerLoopShape(t *testing.T) {
	m := mesh.Generate(400, 2400, 1)
	l := NewEuler(m, 2).Loop(4, 2, inspector.Cyclic)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Mode != rts.Reduce || len(l.Ind) != 2 || l.Cost.Comp != 3 {
		t.Fatalf("unexpected euler loop shape: %+v", l.Cost)
	}
	if l.Cost.BcastComp == 0 {
		t.Fatal("euler must refresh replicated state each step")
	}
}

func TestMVMLoopShape(t *testing.T) {
	a := sparse.Generate(sparse.Class{Name: "t", N: 100, NNZ: 600}, 0)
	l := NewMVM(a).Loop(4, 2, inspector.Block)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Mode != rts.Gather || len(l.Ind) != 1 {
		t.Fatal("mvm must be a single-reference gather loop")
	}
	// The paper: mvm needs no LightInspector buffering.
	scheds, err := l.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scheds {
		if s.BufLen != 0 {
			t.Fatalf("mvm schedule allocated %d buffer slots", s.BufLen)
		}
	}
}

func TestKernelSimRuns(t *testing.T) {
	m := mesh.Generate(400, 2400, 1)
	e := NewEuler(m, 2)
	res, err := rts.RunSim(e.Loop(4, 2, inspector.Cyclic), rts.SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("euler sim produced no cycles")
	}

	sys := moldyn.Generate(4, 1, 0.02, 3)
	md := NewMoldyn(sys)
	res, err = rts.RunSim(md.Loop(4, 2, inspector.Cyclic), rts.SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("moldyn sim produced no cycles")
	}

	a := sparse.Generate(sparse.Class{Name: "t", N: 500, NNZ: 4000}, 0)
	mv := NewMVM(a)
	res, err = rts.RunSim(mv.Loop(4, 2, inspector.Block), rts.SimOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("mvm sim produced no cycles")
	}
}

func TestLJForceAntisymmetric(t *testing.T) {
	pos := []float64{0.2, 0.2, 0.2, 0.9, 0.4, 0.3}
	var fab, fba [3]float64
	ljForce(pos, 10, 0, 1, fab[:])
	ljForce(pos, 10, 1, 0, fba[:])
	for c := 0; c < 3; c++ {
		if math.Abs(fab[c]+fba[c]) > 1e-12 {
			t.Fatalf("force not antisymmetric: %v vs %v", fab, fba)
		}
	}
}

func TestMomentumConservation(t *testing.T) {
	// Equal-and-opposite force accumulation keeps total momentum constant.
	sys := moldyn.Generate(3, 1, 0.02, 5)
	md := NewMoldyn(sys)
	_, vel := md.RunSequential(5)
	var totBefore, totAfter [3]float64
	for i := 0; i < sys.N; i++ {
		for c := 0; c < 3; c++ {
			totBefore[c] += sys.Vel[3*i+c]
			totAfter[c] += vel[3*i+c]
		}
	}
	for c := 0; c < 3; c++ {
		if math.Abs(totAfter[c]-totBefore[c]) > 1e-8*float64(sys.N) {
			t.Fatalf("momentum drifted: %v -> %v", totBefore, totAfter)
		}
	}
}

func TestFluxDeterministic(t *testing.T) {
	var a, b [3]float64
	qa := []float64{1, 2, 3}
	qb := []float64{0.5, 0.25, 0.125}
	flux(1.5, qa, qb, a[:])
	flux(1.5, qa, qb, b[:])
	for c := 0; c < 3; c++ {
		if a[c] != b[c] {
			t.Fatal("flux not deterministic")
		}
	}
	if a[0] == 0 && a[1] == 0 && a[2] == 0 {
		t.Fatal("flux identically zero")
	}
}

func TestDiagnostics(t *testing.T) {
	vel := []float64{1, 0, 0, 0, 2, 0}
	if ke := KineticEnergy(vel); ke != 2.5 {
		t.Fatalf("KE = %v, want 2.5", ke)
	}
	p := Momentum(vel)
	if p != [3]float64{1, 2, 0} {
		t.Fatalf("momentum = %v", p)
	}
	if n := ResidualNorm([]float64{3, 4}); n != 5 {
		t.Fatalf("norm = %v", n)
	}
}

func TestEnergyConservationShortRun(t *testing.T) {
	// Over a short leapfrog run at tiny dt, total LJ + kinetic energy must
	// be nearly conserved — a strong physical check that the parallel
	// force reduction is complete and correctly signed.
	sys := moldyn.Generate(4, 1, 0.02, 11)
	md := NewMoldyn(sys)
	md.Dt = 5e-5
	e0 := md.LJPotential(sys.Pos) + KineticEnergy(sys.Vel)

	nat, pos, vel, err := md.NewNative(4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := nat.Run(20); err != nil {
		t.Fatal(err)
	}
	e1 := md.LJPotential(pos) + KineticEnergy(vel)
	drift := math.Abs(e1-e0) / (math.Abs(e0) + 1)
	if drift > 1e-3 {
		t.Fatalf("energy drifted by %.2e (from %v to %v)", drift, e0, e1)
	}
}

func TestLJPotentialShape(t *testing.T) {
	// With sigma = 1, the FCC nearest-neighbour spacing (1/sqrt 2) is
	// inside the repulsive core, so the lattice potential is positive; a
	// pair at the LJ minimum distance 2^(1/6) has energy exactly -1.
	sys := moldyn.Generate(4, 2, 0, 1)
	md := NewMoldyn(sys)
	if u := md.LJPotential(sys.Pos); u <= 0 {
		t.Fatalf("compressed lattice potential %v, want positive", u)
	}
	pair := &moldyn.System{N: 2, Box: 100, Pos: []float64{0, 0, 0, math.Pow(2, 1.0/6), 0, 0},
		Vel: make([]float64, 6), I1: []int32{0}, I2: []int32{1}, Cutoff: 2}
	mdPair := NewMoldyn(pair)
	if u := mdPair.LJPotential(pair.Pos); math.Abs(u+1) > 1e-12 {
		t.Fatalf("pair potential at the minimum = %v, want -1", u)
	}
	// And the force there is zero.
	var f [3]float64
	ljForce(pair.Pos, pair.Box, 0, 1, f[:])
	if math.Abs(f[0]) > 1e-10 {
		t.Fatalf("force at the LJ minimum = %v, want 0", f[0])
	}
}
