package kernels

import (
	"irred/internal/dataflow"
	"irred/internal/inspector"
	"irred/internal/rts"
	"irred/internal/sparse"
)

// MVM is the sparse matrix-vector kernel extracted from the NAS Conjugate
// Gradient benchmark (paper Section 5.3). Iterating y = A*x rotates the x
// vector: each nonzero consumes x at its column index, so iterations are
// partitioned into phases by column portion. The reduction output y is
// indexed by row — not through an indirection — so no LightInspector
// buffering is needed, exactly as the paper notes. Between sweeps a vector
// update feeds y back into x (a CG-like iteration).
type MVM struct {
	A    *sparse.CSR
	Rows []int32 // row of each stored nonzero (iteration-aligned)
}

// mvmCost: multiply-add per nonzero, the value and row-index streams, the
// gathered x read, the y accumulation, and the vector update. No replicated
// data is refreshed: x itself rotates.
var mvmCost = rts.KernelCost{
	Flops:               2,
	IntOps:              3,
	IterArrays:          2,
	NodeArrays:          0,
	Comp:                1,
	UpdateFlopsPerElem:  2,
	UpdateArraysPerElem: 2,
	BcastComp:           0,
}

// NewMVM wraps a CSR matrix.
func NewMVM(a *sparse.CSR) *MVM {
	return &MVM{A: a, Rows: a.RowOfNZ()}
}

// Loop describes the gather sweep to the runtime. The loop carries a
// scanned bounds proof over the column indices when they are all in
// range, so the native engine runs without per-read target validation.
func (m *MVM) Loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Proof: dataflow.IndirectionFacts("mvm gather sweep", m.A.N, m.A.Col),
		Cfg: inspector.Config{
			P: p, K: k,
			NumIters: m.A.NNZ(),
			NumElems: m.A.N,
			Dist:     dist,
		},
		Mode:      rts.Gather,
		Ind:       [][]int32{m.A.Col},
		Cost:      mvmCost,
		GatherOut: m.Rows,
	}
}

// scale is the between-sweep vector op: x = y / norm-ish constant, keeping
// magnitudes bounded over many sweeps.
const mvmScale = 0.25

// SequentialStep computes y = A*x then x = scale*y.
func (m *MVM) SequentialStep(x, y []float64) {
	m.A.MulVec(x, y)
	for i := range x {
		x[i] = mvmScale * y[i]
	}
}

// RunSequential iterates the kernel from the all-ones vector.
func (m *MVM) RunSequential(steps int) (x []float64) {
	x = make([]float64, m.A.N)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.A.N)
	for s := 0; s < steps; s++ {
		m.SequentialStep(x, y)
	}
	return x
}

// NewNative wires the kernel onto the native engine. Native.X is the
// rotated x vector (initialised to ones); each processor accumulates into
// a private partial-y, and the update folds partials into the home rows
// before the vector op.
func (m *MVM) NewNative(p, k int, dist inspector.Dist) (*rts.Native, error) {
	return m.NewNativeFrom(nil, p, k, dist)
}

// NewNativeFrom is NewNative over pre-built schedules (e.g. served from a
// schedule cache); a nil scheds runs the LightInspector as NewNative does.
func (m *MVM) NewNativeFrom(scheds []*inspector.Schedule, p, k int, dist inspector.Dist) (*rts.Native, error) {
	l := m.Loop(p, k, dist)
	n, err := newNative(l, scheds)
	if err != nil {
		return nil, err
	}
	for i := range n.X {
		n.X[i] = 1
	}
	partial := make([][]float64, p)
	for q := range partial {
		partial[q] = make([]float64, m.A.N)
	}
	n.Consume = func(proc, i int, vals []float64) {
		partial[proc][m.Rows[i]] += m.A.Val[i] * vals[0]
	}
	n.Update = func(proc, step int) {
		lo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, 0))
		_, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, l.Cfg.K-1))
		for r := lo; r < hi; r++ {
			var y float64
			for q := range partial {
				y += partial[q][r]
				partial[q][r] = 0
			}
			n.X[r] = mvmScale * y
		}
	}
	return n, nil
}
