// Package kernels implements the paper's three benchmark kernels — mvm,
// euler and moldyn — each as a sequential reference implementation, a
// native parallel execution wired onto the rts engines, and a cost
// description for the EARTH simulator.
package kernels

import (
	"irred/internal/dataflow"
	"math/rand"

	"irred/internal/inspector"
	"irred/internal/mesh"
	"irred/internal/rts"
)

// Euler is the CFD-flavoured unstructured-mesh kernel (derived from the
// paper's reference [5]): a sweep over mesh edges computes a flux from the
// states of the two endpoint nodes and accumulates it into both nodes'
// residuals — an irregular reduction with two indirection references and a
// three-component reduction array. A regular per-node loop then advances
// the state from the residual.
type Euler struct {
	Mesh *mesh.Mesh
	W    []float64 // per-edge weight (face area / metric term)
	Q    []float64 // node state, 3 components interleaved (replicated read)
	Dt   float64
}

// eulerCost declares the per-iteration work to the simulator: the flux
// evaluation (~30 flops), two endpoint state reads (3 components each), the
// edge weight, a 3-component reduction, a per-node update, and a per-step
// refresh of the replicated state.
var eulerCost = rts.KernelCost{
	Flops:               30,
	IntOps:              6,
	IterArrays:          1,
	NodeArrays:          3,
	Comp:                3,
	UpdateFlopsPerElem:  6,
	UpdateArraysPerElem: 6,
	BcastComp:           3,
}

// NewEuler builds the kernel over a mesh with deterministic initial state.
func NewEuler(m *mesh.Mesh, seed int64) *Euler {
	rng := rand.New(rand.NewSource(seed))
	e := &Euler{
		Mesh: m,
		W:    make([]float64, m.NumEdges()),
		Q:    make([]float64, 3*m.NumNodes),
		Dt:   1e-3,
	}
	for i := range e.W {
		e.W[i] = 0.5 + rng.Float64()
	}
	for i := range e.Q {
		e.Q[i] = rng.Float64()
	}
	return e
}

// newNative builds a Native for l, reusing scheds when provided.
func newNative(l *rts.Loop, scheds []*inspector.Schedule) (*rts.Native, error) {
	if scheds == nil {
		return rts.NewNative(l)
	}
	return rts.NewNativeFrom(l, scheds)
}

// flux computes the edge flux components into out[0:3] given endpoint
// states qa, qb (3 values each) and the edge weight w. It is the shared
// physics of the sequential and parallel paths.
func flux(w float64, qa, qb, out []float64) {
	// A Rusanov-like flux: central difference plus a quadratic term and a
	// dissipation proportional to the state jump.
	for c := 0; c < 3; c++ {
		avg := 0.5 * (qa[c] + qb[c])
		jump := qa[c] - qb[c]
		out[c] = w * (avg*avg*0.25 + jump*0.75 + avg*0.5)
	}
}

// Loop describes the flux sweep to the runtime, carrying a scanned
// bounds proof over the edge endpoints when they are all in range.
func (e *Euler) Loop(p, k int, dist inspector.Dist) *rts.Loop {
	return &rts.Loop{
		Proof: dataflow.IndirectionFacts("euler flux sweep", e.Mesh.NumNodes, e.Mesh.I1, e.Mesh.I2),
		Cfg: inspector.Config{
			P: p, K: k,
			NumIters: e.Mesh.NumEdges(),
			NumElems: e.Mesh.NumNodes,
			Dist:     dist,
		},
		Mode: rts.Reduce,
		Ind:  [][]int32{e.Mesh.I1, e.Mesh.I2},
		Cost: eulerCost,
	}
}

// SequentialStep runs one reference timestep: flux sweep into res, then the
// node update. res must hold 3*NumNodes zeros on entry and is left zeroed.
func (e *Euler) SequentialStep(q, res []float64) {
	var f [3]float64
	for i := range e.Mesh.I1 {
		a, b := int(e.Mesh.I1[i]), int(e.Mesh.I2[i])
		flux(e.W[i], q[3*a:3*a+3], q[3*b:3*b+3], f[:])
		for c := 0; c < 3; c++ {
			res[3*a+c] += f[c]
			res[3*b+c] -= f[c]
		}
	}
	for j := range q {
		q[j] += e.Dt * res[j]
		res[j] = 0
	}
}

// RunSequential advances a copy of the initial state for steps timesteps
// and returns it.
func (e *Euler) RunSequential(steps int) []float64 {
	q := append([]float64(nil), e.Q...)
	res := make([]float64, len(q))
	for s := 0; s < steps; s++ {
		e.SequentialStep(q, res)
	}
	return q
}

// NewNative wires the kernel onto the native engine. The returned Native's
// X is the residual array; the evolving state lives in the returned slice,
// updated under the engine's barrier.
func (e *Euler) NewNative(p, k int, dist inspector.Dist) (*rts.Native, []float64, error) {
	return e.NewNativeFrom(nil, p, k, dist)
}

// NewNativeFrom is NewNative over pre-built schedules (e.g. served from a
// schedule cache); a nil scheds runs the LightInspector as NewNative does.
func (e *Euler) NewNativeFrom(scheds []*inspector.Schedule, p, k int, dist inspector.Dist) (*rts.Native, []float64, error) {
	l := e.Loop(p, k, dist)
	n, err := newNative(l, scheds)
	if err != nil {
		return nil, nil, err
	}
	q := append([]float64(nil), e.Q...)
	n.Contribs = func(_, i int, out []float64) {
		a, b := int(e.Mesh.I1[i]), int(e.Mesh.I2[i])
		var f [3]float64
		flux(e.W[i], q[3*a:3*a+3], q[3*b:3*b+3], f[:])
		for c := 0; c < 3; c++ {
			out[c] = f[c]    // reference 0: += f
			out[3+c] = -f[c] // reference 1: -= f
		}
	}
	n.Update = func(proc, step int) {
		lo, _ := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, 0))
		_, hi := l.Cfg.PortionBounds(l.Cfg.PortionAt(proc, l.Cfg.K-1))
		for eIdx := lo; eIdx < hi; eIdx++ {
			for c := 0; c < 3; c++ {
				q[3*eIdx+c] += e.Dt * n.X[3*eIdx+c]
				n.X[3*eIdx+c] = 0
			}
		}
	}
	return n, q, nil
}
