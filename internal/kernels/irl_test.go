package kernels

import (
	"math"
	"testing"

	"irred/internal/codegen"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/mesh"
	"irred/internal/sparse"
)

func TestEulerIRLCompilesToOneGroup(t *testing.T) {
	u, err := codegen.Compile(EulerIRL)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 {
		t.Fatalf("plans = %d, want 1 (r1,r2,r3 share one reference group)", len(u.Plans))
	}
	p := u.Plans[0]
	if got := p.ReductionArrays(); len(got) != 3 {
		t.Fatalf("reduction arrays = %v, want r1,r2,r3", got)
	}
	if p.Info.NeedsFission() {
		t.Fatal("one group must not need fission")
	}
}

// TestEulerIRLMatchesGoKernel runs the compiled IRL euler flux sweep on the
// phase runtime and compares the residuals against the hand-written Go
// kernel's flux accumulation on the same mesh and state.
func TestEulerIRLMatchesGoKernel(t *testing.T) {
	m := mesh.Generate(300, 1800, 5)
	eu := NewEuler(m, 6)

	u, err := codegen.Compile(EulerIRL)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("num_edges", m.NumEdges())
	env.SetParam("num_nodes", m.NumNodes)
	ia := make([]int32, 2*m.NumEdges())
	for i := 0; i < m.NumEdges(); i++ {
		ia[2*i] = m.I1[i]
		ia[2*i+1] = m.I2[i]
	}
	if err := env.BindInt("ia", ia); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("w", eu.W); err != nil {
		t.Fatal(err)
	}
	// Unpack the interleaved state into per-component arrays.
	for c, name := range []string{"q1", "q2", "q3"} {
		q := make([]float64, m.NumNodes)
		for e := 0; e < m.NumNodes; e++ {
			q[e] = eu.Q[3*e+c]
		}
		if err := env.BindFloat(name, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	r, err := u.NewRunner(env, 4, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}

	// Reference: the Go kernel's flux accumulation (no update step).
	want := make([]float64, 3*m.NumNodes)
	var f [3]float64
	for i := 0; i < m.NumEdges(); i++ {
		a, b := int(m.I1[i]), int(m.I2[i])
		flux(eu.W[i], eu.Q[3*a:3*a+3], eu.Q[3*b:3*b+3], f[:])
		for c := 0; c < 3; c++ {
			want[3*a+c] += f[c]
			want[3*b+c] -= f[c]
		}
	}
	for c, name := range []string{"r1", "r2", "r3"} {
		got := env.Floats[name]
		for e := 0; e < m.NumNodes; e++ {
			if math.Abs(got[e]-want[3*e+c]) > 1e-9 {
				t.Fatalf("%s[%d] = %v, Go kernel %v", name, e, got[e], want[3*e+c])
			}
		}
	}
}

// TestMVMIRLMatchesCSR compiles the reduction formulation of mvm and
// checks y = A*x against the CSR reference.
func TestMVMIRLMatchesCSR(t *testing.T) {
	a := sparse.Generate(sparse.Class{Name: "t", N: 200, NNZ: 1600}, 3)
	u, err := codegen.Compile(MVMIRL)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 || u.Plans[0].Kind != codegen.Irregular {
		t.Fatalf("mvm IRL plans wrong: %d", len(u.Plans))
	}
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("nnz", a.NNZ())
	env.SetParam("n", a.N)
	rows := a.RowOfNZ()
	if err := env.BindInt("row", rows); err != nil {
		t.Fatal(err)
	}
	if err := env.BindInt("col", a.Col); err != nil {
		t.Fatal(err)
	}
	if err := env.BindFloat("a", a.Val); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%9) + 0.5
	}
	if err := env.BindFloat("x", x); err != nil {
		t.Fatal(err)
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	r, err := u.NewRunner(env, 4, 2, inspector.Block)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N)
	a.MulVec(x, want)
	got := env.Floats["y"]
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMoldynIRLCompiles(t *testing.T) {
	u, err := codegen.CompileOptimized(MoldynIRL)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(u.Plans))
	}
	if got := u.Plans[0].ReductionArrays(); len(got) != 3 {
		t.Fatalf("reduction arrays = %v", got)
	}
	// The three position reads through each column repeat: CSE (via
	// CompileOptimized) must not change the analysis outcome.
	if u.Plans[0].Info.NeedsFission() {
		t.Fatal("moldyn IRL must be a single group")
	}
}

// TestMoldynIRLMatchesDirect evaluates the compiled open-boundary LJ sweep
// against a direct Go evaluation of the same force law.
func TestMoldynIRLMatchesDirect(t *testing.T) {
	const nMol, nInt = 60, 200
	u, err := codegen.Compile(MoldynIRL)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(u.Fissioned)
	env.SetParam("num_inter", nInt)
	env.SetParam("num_mol", nMol)
	ia := make([]int32, 2*nInt)
	px := make([]float64, nMol)
	py := make([]float64, nMol)
	pz := make([]float64, nMol)
	for i := 0; i < nMol; i++ {
		px[i] = float64(i%5) + 0.9
		py[i] = float64(i%7) * 0.8
		pz[i] = float64(i%3) * 1.1
	}
	for i := 0; i < nInt; i++ {
		a := i % nMol
		b := (i*7 + 1) % nMol
		if a == b {
			b = (b + 1) % nMol
		}
		ia[2*i], ia[2*i+1] = int32(a), int32(b)
	}
	if err := env.BindInt("ia", ia); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]float64{"px": px, "py": py, "pz": pz} {
		if err := env.BindFloat(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Alloc(); err != nil {
		t.Fatal(err)
	}
	r, err := u.NewRunner(env, 3, 2, inspector.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(); err != nil {
		t.Fatal(err)
	}

	wantX := make([]float64, nMol)
	wantY := make([]float64, nMol)
	wantZ := make([]float64, nMol)
	for i := 0; i < nInt; i++ {
		a, b := int(ia[2*i]), int(ia[2*i+1])
		dx, dy, dz := px[a]-px[b], py[a]-py[b], pz[a]-pz[b]
		r2 := dx*dx + dy*dy + dz*dz
		inv2 := 1 / r2
		inv6 := inv2 * inv2 * inv2
		s := 24 * inv2 * inv6 * (2*inv6 - 1)
		wantX[a] += s * dx
		wantX[b] -= s * dx
		wantY[a] += s * dy
		wantY[b] -= s * dy
		wantZ[a] += s * dz
		wantZ[b] -= s * dz
	}
	for name, want := range map[string][]float64{"fx": wantX, "fy": wantY, "fz": wantZ} {
		got := env.Floats[name]
		for e := range want {
			if math.Abs(got[e]-want[e]) > 1e-9*(1+math.Abs(want[e])) {
				t.Fatalf("%s[%d] = %v, want %v", name, e, got[e], want[e])
			}
		}
	}
}
