// Package buildinfo resolves the identity of the running binary — module
// version, VCS revision, dirty-tree marker, Go toolchain — from the build
// metadata the Go linker already embeds (debug.ReadBuildInfo).
//
// Every perf artifact the sweep harness writes (BENCH summaries, JSONL
// cell records) and every daemon's -version output is stamped with this
// identity, so a trajectory point is attributable to an exact commit: a
// regression found by the CI gate names the revision that introduced it
// instead of "sometime between two prose updates of EXPERIMENTS.md".
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary. Fields are "unknown"
// (never empty) when the metadata is absent — e.g. `go run` of a
// non-module directory or a stripped test binary — so downstream records
// always carry a parseable value.
type Info struct {
	Module     string `json:"module"`      // module path (e.g. "irred")
	Version    string `json:"version"`     // module version, "(devel)" for local builds
	Revision   string `json:"revision"`    // full VCS commit hash
	CommitTime string `json:"commit_time"` // RFC3339 commit timestamp
	Modified   bool   `json:"modified"`    // tree was dirty at build time
	GoVersion  string `json:"go_version"`  // toolchain that built the binary
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
}

const unknown = "unknown"

// read is swappable for tests (debug.ReadBuildInfo is empty under `go test`).
var read = debug.ReadBuildInfo

// Get resolves the build identity. It never fails: absent metadata
// degrades to "unknown" fields, and the runtime facts (Go version, OS,
// arch, CPU count) are always present.
func Get() Info {
	info := Info{
		Module:     unknown,
		Version:    unknown,
		Revision:   unknown,
		CommitTime: unknown,
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
	}
	bi, ok := read()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.CommitTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// ShortRevision is the 12-character commit prefix, or "unknown".
func (i Info) ShortRevision() string {
	if i.Revision == unknown || len(i.Revision) < 12 {
		return i.Revision
	}
	return i.Revision[:12]
}

// String renders the one-line -version output shared by the commands.
func (i Info) String() string {
	dirty := ""
	if i.Modified {
		dirty = "+dirty"
	}
	return fmt.Sprintf("%s %s (commit %s%s, %s, %s/%s)",
		i.Module, i.Version, i.ShortRevision(), dirty, i.GoVersion, i.OS, i.Arch)
}
