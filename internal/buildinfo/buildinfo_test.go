package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

// withBuildInfo swaps the metadata source for the duration of a test.
func withBuildInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	old := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = old })
}

func TestGetAbsentMetadata(t *testing.T) {
	withBuildInfo(t, nil, false)
	i := Get()
	if i.Module != "unknown" || i.Revision != "unknown" || i.Version != "unknown" {
		t.Fatalf("absent metadata must degrade to unknown, got %+v", i)
	}
	if i.GoVersion == "" || i.OS == "" || i.Arch == "" || i.NumCPU < 1 {
		t.Fatalf("runtime facts must always be present, got %+v", i)
	}
}

func TestGetVCSStamp(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		Main: debug.Module{Path: "irred", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.time", Value: "2026-08-08T00:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	i := Get()
	if i.Module != "irred" || i.Version != "(devel)" {
		t.Fatalf("module identity: %+v", i)
	}
	if i.Revision != "0123456789abcdef0123456789abcdef01234567" || !i.Modified {
		t.Fatalf("vcs stamp: %+v", i)
	}
	if got := i.ShortRevision(); got != "0123456789ab" {
		t.Fatalf("ShortRevision = %q", got)
	}
	s := i.String()
	if !strings.Contains(s, "0123456789ab") || !strings.Contains(s, "+dirty") {
		t.Fatalf("String() = %q", s)
	}
}

func TestShortRevisionUnknown(t *testing.T) {
	i := Info{Revision: "unknown"}
	if i.ShortRevision() != "unknown" {
		t.Fatalf("ShortRevision on unknown = %q", i.ShortRevision())
	}
	i = Info{Revision: "abc"}
	if i.ShortRevision() != "abc" {
		t.Fatalf("short hashes pass through, got %q", i.ShortRevision())
	}
}
