package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokPunct // single punctuation: [ ] { } ( ) , = + - * /
	tokOpEq  // += or -=
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  Pos
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes IRL source. `#` starts a comment to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("irl:%s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peekByte()
		if c == '#' {
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance()
			continue
		}
		break
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.off
		for l.off < len(l.src) {
			c := l.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		start := l.off
		seenDot, seenExp := false, false
		for l.off < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				l.advance()
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !seenExp && l.off > start:
				seenExp = true
				l.advance()
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.advance()
				}
			default:
				goto done
			}
		}
	done:
		text := l.src[start:l.off]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, l.errorf(pos, "bad number %q", text)
		}
		return token{kind: tokNum, text: text, num: v, pos: pos}, nil
	case c == '+' || c == '-' || c == '*':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return token{kind: tokOpEq, text: string(c) + "=", pos: pos}, nil
		}
		return token{kind: tokPunct, text: string(c), pos: pos}, nil
	case strings.IndexByte("[]{}(),=/", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), pos: pos}, nil
	default:
		return token{}, l.errorf(pos, "unexpected character %q", c)
	}
}
