// Package lang defines IRL — a small irregular-loop language — with its
// lexer, parser and AST. IRL expresses exactly the loop class the paper's
// compiler analysis handles (Figure 1):
//
//	param num_edges, num_nodes
//	array ia[num_edges, 2] int
//	array x[num_nodes]
//	array y[num_edges]
//	array c[num_nodes]
//
//	loop i = 0, num_edges {
//	    x[ia[i, 0]] += y[i] * c[ia[i, 0]]
//	    x[ia[i, 1]] += y[i] * c[ia[i, 1]]
//	}
//
// The EARTH-C compiler of the paper consumed C; the analysis it performs —
// array-section extraction, reference grouping, loop fission — operates on
// normalized loop nests of this shape, which IRL captures directly.
package lang

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed IRL compilation unit.
type Program struct {
	Params []string     // symbolic extents
	Arrays []*ArrayDecl // declared arrays
	Loops  []*Loop      // top-level loops, in order
}

// Array looks up a declaration by name, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ArrayDecl declares an array with one or two dimensions. Each dimension
// extent is either a parameter name or an integer literal. Int arrays are
// indirection candidates; float arrays carry data.
type ArrayDecl struct {
	Name string
	Dims []Extent
	Int  bool
	Pos  Pos
}

// Extent is a dimension size: a parameter reference or a literal.
type Extent struct {
	Param string // non-empty if symbolic
	Lit   int    // used when Param == ""
}

func (e Extent) String() string {
	if e.Param != "" {
		return e.Param
	}
	return fmt.Sprintf("%d", e.Lit)
}

// Loop is `loop i = lo, hi { body }` iterating i over [lo, hi).
type Loop struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Body []*Assign
	Pos  Pos
}

// AssignOp is the assignment operator of a statement.
type AssignOp int

const (
	OpSet AssignOp = iota // =
	OpAdd                 // +=
	OpSub                 // -=
	OpMul                 // *=
	OpMin                 // min=
	OpMax                 // max=
)

func (op AssignOp) String() string {
	switch op {
	case OpAdd:
		return "+="
	case OpSub:
		return "-="
	case OpMul:
		return "*="
	case OpMin:
		return "min="
	case OpMax:
		return "max="
	default:
		return "="
	}
}

// Assign is one loop-body statement: either a scalar definition
// (`t = expr`) or an array update (`x[idx] op= expr`).
type Assign struct {
	// Scalar is set for scalar definitions; Target for array updates.
	Scalar string
	Target *IndexExpr
	Op     AssignOp
	RHS    Expr
	Pos    Pos
}

// Expr is an IRL expression node.
type Expr interface {
	expr()
	String() string
	Position() Pos
}

// Num is a numeric literal.
type Num struct {
	Val float64
	Pos Pos
}

// Ident references a scalar: the loop variable, a parameter, or a
// loop-local temporary.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr is an array reference a[e] or a[e1, e2].
type IndexExpr struct {
	Array string
	Index []Expr
	Pos   Pos
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // + - * /
	L, R Expr
	Pos  Pos
}

// UnExpr is unary negation.
type UnExpr struct {
	X   Expr
	Pos Pos
}

// CallExpr is a call to a builtin (sqrt, abs, min, max).
type CallExpr struct {
	Fn   string
	Args []Expr
	Pos  Pos
}

func (*Num) expr()       {}
func (*Ident) expr()     {}
func (*IndexExpr) expr() {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*CallExpr) expr()  {}

func (e *Num) Position() Pos       { return e.Pos }
func (e *Ident) Position() Pos     { return e.Pos }
func (e *IndexExpr) Position() Pos { return e.Pos }
func (e *BinExpr) Position() Pos   { return e.Pos }
func (e *UnExpr) Position() Pos    { return e.Pos }
func (e *CallExpr) Position() Pos  { return e.Pos }

func (e *Num) String() string   { return fmt.Sprintf("%g", e.Val) }
func (e *Ident) String() string { return e.Name }
func (e *IndexExpr) String() string {
	s := e.Array + "[" + e.Index[0].String()
	for _, x := range e.Index[1:] {
		s += ", " + x.String()
	}
	return s + "]"
}
func (e *BinExpr) String() string {
	return "(" + e.L.String() + " " + string(e.Op) + " " + e.R.String() + ")"
}
func (e *UnExpr) String() string { return "-" + e.X.String() }
func (e *CallExpr) String() string {
	s := e.Fn + "(" + e.Args[0].String()
	for _, a := range e.Args[1:] {
		s += ", " + a.String()
	}
	return s + ")"
}

// String renders a statement as source.
func (a *Assign) String() string {
	lhs := a.Scalar
	if a.Target != nil {
		lhs = a.Target.String()
	}
	return lhs + " " + a.Op.String() + " " + a.RHS.String()
}

// Walk visits every expression node in e, depth-first.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *IndexExpr:
		for _, i := range x.Index {
			Walk(i, fn)
		}
	case *BinExpr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *UnExpr:
		Walk(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}
