package lang

import "testing"

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		figure1,
		`
param n
array a[n]
array b[n]
loop i = 0, n {
    t = a[i] * 2 + 1
    b[i] = t - a[i] / 4
}
`,
		`
param n, m
array ia[n, 2] int
array x[m]
loop i = 0, n {
    x[ia[i, 0]] += sqrt(abs(0 - i)) + min(1, 2) * max(3, 4)
    x[ia[i, 1]] -= -i
}
`,
		`
param n, m
array e[n] int
array w[n]
array best[m]
array scale[m]
loop i = 0, n {
    best[e[i]] min= w[i]
    scale[e[i]] *= 2
    best[e[i]] max= 0 - w[i]
}
`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		// A second round of formatting must be a fixed point.
		if Format(p2) != text {
			t.Fatalf("Format not idempotent:\n--- first\n%s\n--- second\n%s", text, Format(p2))
		}
		// Structure preserved.
		if len(p2.Loops) != len(p1.Loops) || len(p2.Arrays) != len(p1.Arrays) {
			t.Fatalf("round trip changed structure")
		}
		for li := range p1.Loops {
			if len(p2.Loops[li].Body) != len(p1.Loops[li].Body) {
				t.Fatalf("loop %d body length changed", li)
			}
			for si := range p1.Loops[li].Body {
				a, b := p1.Loops[li].Body[si], p2.Loops[li].Body[si]
				if a.String() != b.String() {
					t.Fatalf("stmt changed: %q vs %q", a, b)
				}
			}
		}
	}
}

func TestFormatLiteralDims(t *testing.T) {
	p := MustParse("array a[16]\nloop i = 0, 16 { a[i] = 1 }")
	text := Format(p)
	if _, err := Parse(text); err != nil {
		t.Fatalf("literal-dim program did not round trip: %v\n%s", err, text)
	}
}
