package lang

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse hammers the IRL parser with arbitrary input. Properties:
//
//  1. Parse never panics — it either returns a Program or an error.
//  2. Accepted programs survive a format/reparse round trip: Format is a
//     fixed point after one application (pretty-printing is canonical),
//     and the reparse must succeed — anything Format emits is valid IRL.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"param n\narray x[n]\nloop i = 0, n {\n    x[i] = 1.0\n}\n",
		"param nnz, n\narray row[nnz] int\narray a[nnz]\narray y[n]\nloop i = 0, nnz {\n    y[row[i]] += a[i]\n}\n",
		"param m\narray ia[m, 2] int\narray r[m]\nloop i = 0, m {\n    f = r[ia[i, 0]] - r[ia[i, 1]]\n    r[ia[i, 0]] += f * 0.5\n}\n",
		"loop i = 0, 10 {\n}\n",
		"param n array x[n",
		"loop i = 0 n { x[i] = }",
		"# comment only\n",
		"param n\nloop i = 0, n {\n    x = ((1 + 2) * (3 - 4)) / 5\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			t.Skip()
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program without error")
		}
		out1 := Format(prog)
		prog2, err := Parse(out1)
		if err != nil {
			t.Fatalf("formatted program does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, src, out1)
		}
		out2 := Format(prog2)
		if out1 != out2 {
			t.Fatalf("Format not canonical:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}
