package lang

import (
	"strings"
	"testing"
)

const figure1 = `
# Figure 1 of the paper: a simple loop involving indirection.
param num_edges, num_nodes
array ia[num_edges, 2] int
array x[num_nodes]
array y[num_edges]
array c[num_nodes]

loop i = 0, num_edges {
    x[ia[i, 0]] += y[i] * c[ia[i, 0]]
    x[ia[i, 1]] += y[i] * c[ia[i, 1]]
}
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Params) != 2 || prog.Params[0] != "num_edges" {
		t.Fatalf("params = %v", prog.Params)
	}
	if len(prog.Arrays) != 4 {
		t.Fatalf("arrays = %d", len(prog.Arrays))
	}
	ia := prog.Array("ia")
	if ia == nil || !ia.Int || len(ia.Dims) != 2 || ia.Dims[1].Lit != 2 {
		t.Fatalf("ia decl wrong: %+v", ia)
	}
	if len(prog.Loops) != 1 {
		t.Fatalf("loops = %d", len(prog.Loops))
	}
	l := prog.Loops[0]
	if l.Var != "i" || len(l.Body) != 2 {
		t.Fatalf("loop shape wrong: var=%q body=%d", l.Var, len(l.Body))
	}
	st := l.Body[0]
	if st.Target == nil || st.Target.Array != "x" || st.Op != OpAdd {
		t.Fatalf("statement 0: %s", st)
	}
	inner, ok := st.Target.Index[0].(*IndexExpr)
	if !ok || inner.Array != "ia" {
		t.Fatalf("target index not an indirection: %s", st.Target)
	}
}

func TestParseScalarTemp(t *testing.T) {
	prog, err := Parse(`
param n
array a[n]
array b[n]
loop i = 0, n {
    t = a[i] * 2
    b[i] += t
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Loops[0].Body
	if body[0].Scalar != "t" || body[0].Op != OpSet {
		t.Fatalf("scalar stmt: %s", body[0])
	}
}

func TestPrecedence(t *testing.T) {
	prog := MustParse("param n\narray a[n]\nloop i = 0, n { a[i] = 1 + 2 * 3 - 4 / 2 }")
	got := prog.Loops[0].Body[0].RHS.String()
	if got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Fatalf("precedence wrong: %s", got)
	}
}

func TestParens(t *testing.T) {
	prog := MustParse("param n\narray a[n]\nloop i = 0, n { a[i] = (1 + 2) * 3 }")
	got := prog.Loops[0].Body[0].RHS.String()
	if got != "((1 + 2) * 3)" {
		t.Fatalf("parens wrong: %s", got)
	}
}

func TestUnaryAndCalls(t *testing.T) {
	prog := MustParse("param n\narray a[n]\nloop i = 0, n { a[i] += -sqrt(a[i]) + min(1, 2) }")
	s := prog.Loops[0].Body[0].RHS.String()
	if !strings.Contains(s, "sqrt(a[i])") || !strings.Contains(s, "min(1, 2)") {
		t.Fatalf("calls wrong: %s", s)
	}
}

func TestComments(t *testing.T) {
	if _, err := Parse("# leading\nparam n # trailing\narray a[n]\nloop i = 0, n { a[i] = 1 } # end"); err != nil {
		t.Fatal(err)
	}
}

func TestScientificNumbers(t *testing.T) {
	prog := MustParse("param n\narray a[n]\nloop i = 0, n { a[i] = 1.5e-3 }")
	num := prog.Loops[0].Body[0].RHS.(*Num)
	if num.Val != 1.5e-3 {
		t.Fatalf("num = %v", num.Val)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no loops":         "param n\narray a[n]",
		"bad extent":       "array a[zzz]\nloop i = 0, 1 { a[i] = 1 }",
		"3 dims":           "param n\narray a[n, 2, 2]\nloop i = 0, n { a[i] = 1 }",
		"3 subscripts":     "param n\narray a[n,2]\nloop i = 0, n { a[i,0,1] = 1 }",
		"empty body":       "param n\narray a[n]\nloop i = 0, n { }",
		"undeclared array": "param n\nloop i = 0, n { zz[i] = 1 }",
		"redeclared":       "param n\narray a[n]\narray a[n]\nloop i = 0, n { a[i] = 1 }",
		"bad char":         "param n\narray a[n]\nloop i = 0, n { a[i] = 1 ? 2 }",
		"missing brace":    "param n\narray a[n]\nloop i = 0, n { a[i] = 1",
		"bad arg count":    "param n\narray a[n]\nloop i = 0, n { a[i] = sqrt(1, 2) }",
		"junk top-level":   "banana\nloop i = 0, 1 { }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	prog := MustParse(figure1)
	count := 0
	Walk(prog.Loops[0].Body[0].RHS, func(Expr) { count++ })
	// y[i] * c[ia[i,0]]: Bin, Index(y), Ident(i), Index(c), Index(ia), Ident(i), Num(0)
	if count != 7 {
		t.Fatalf("walked %d nodes, want 7", count)
	}
}

func TestStringRoundTrip(t *testing.T) {
	prog := MustParse(figure1)
	s := prog.Loops[0].Body[0].String()
	if s != "x[ia[i, 0]] += (y[i] * c[ia[i, 0]])" {
		t.Fatalf("render: %s", s)
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("param n\narray a[n]\nloop i = 0, n {\n  a[i] = $\n}")
	if err == nil || !strings.Contains(err.Error(), "4:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}
