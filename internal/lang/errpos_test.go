package lang

import (
	"regexp"
	"testing"
)

// Every parse error must carry a source position in the irl:line:col: form
// so diagnostics stay clickable whatever went wrong.
var errPosRE = regexp.MustCompile(`^irl:\d+:\d+: `)

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"lex bad char", "param n\narray x[n]\nloop i = 0, n { x[i] ?= 1 }"},
		{"top-level junk", "param n\nfrobnicate"},
		{"no loops", "param n\narray x[n]\n"},
		{"empty source", ""},
		{"redeclared array", "param n\narray x[n]\narray x[n]\nloop i = 0, n { x[i] += 1 }"},
		{"bad extent", "param n\narray x[-3]\nloop i = 0, n { }"},
		{"unknown extent param", "param n\narray x[m]\nloop i = 0, n { }"},
		{"too many dims", "param n\narray x[n, n, n]\nloop i = 0, n { }"},
		{"empty loop body", "param n\narray x[n]\nloop i = 0, n {\n}"},
		{"undeclared target", "param n\narray x[n]\nloop i = 0, n { y[i] += 1 }"},
		{"bad assign op", "param n\narray x[n]\nloop i = 0, n { x[i] /= 2 }"},
		{"bad expression", "param n\narray x[n]\nloop i = 0, n { x[i] += } }"},
		{"call arity", "param n\narray x[n]\nloop i = 0, n { x[i] += sqrt(1, 2) }"},
		{"too many subscripts", "param n\narray x[n]\nloop i = 0, n { x[i] += x[i, 0, 1] }"},
		{"unterminated index", "param n\narray x[n]\nloop i = 0, n { x[i += 1 }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("parse unexpectedly succeeded")
			}
			if !errPosRE.MatchString(err.Error()) {
				t.Fatalf("error lacks irl:line:col: prefix: %q", err)
			}
		})
	}
}

// The position in a parse error must point at the offending token, not at
// the start of the statement or file.
func TestParseErrorPositionIsPrecise(t *testing.T) {
	src := "param n\narray x[n]\nloop i = 0, n {\n    x[i] = 1\n    y[i] += 2\n}\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("parse unexpectedly succeeded")
	}
	want := "irl:5:5: "
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("error position = %q, want prefix %q", got, want)
	}
}
