package lang

import "fmt"

// Parse parses an IRL source string into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.program()
}

// MustParse parses src and panics on error; for tests and embedded kernels.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("irl:%s: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// expectPunct consumes a punctuation token with the given text.
func (p *parser) expectPunct(text string) error {
	if p.tok.kind != tokPunct || p.tok.text != text {
		return p.errorf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) atPunct(text string) bool {
	return p.tok.kind == tokPunct && p.tok.text == text
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.tok.kind != tokEOF {
		switch {
		case p.atKeyword("param"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				name, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				prog.Params = append(prog.Params, name)
				if !p.atPunct(",") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.atKeyword("array"):
			a, err := p.arrayDecl(prog)
			if err != nil {
				return nil, err
			}
			if prog.Array(a.Name) != nil {
				return nil, fmt.Errorf("irl:%s: array %q redeclared", a.Pos, a.Name)
			}
			prog.Arrays = append(prog.Arrays, a)
		case p.atKeyword("loop"):
			l, err := p.loop(prog)
			if err != nil {
				return nil, err
			}
			prog.Loops = append(prog.Loops, l)
		default:
			return nil, p.errorf("expected 'param', 'array' or 'loop', found %s", p.tok)
		}
	}
	if len(prog.Loops) == 0 {
		return nil, p.errorf("program has no loops")
	}
	return prog, nil
}

func (p *parser) arrayDecl(prog *Program) (*ArrayDecl, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'array'
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	a := &ArrayDecl{Name: name, Pos: pos}
	for {
		ext, err := p.extent(prog)
		if err != nil {
			return nil, err
		}
		a.Dims = append(a.Dims, ext)
		if p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(a.Dims) > 2 {
		return nil, fmt.Errorf("irl:%s: array %q has %d dimensions; at most 2 supported", pos, name, len(a.Dims))
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if p.atKeyword("int") {
		a.Int = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func (p *parser) extent(prog *Program) (Extent, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		found := false
		for _, q := range prog.Params {
			if q == name {
				found = true
				break
			}
		}
		if !found {
			return Extent{}, p.errorf("unknown parameter %q in array extent", name)
		}
		return Extent{Param: name}, p.advance()
	case tokNum:
		n := int(p.tok.num)
		if float64(n) != p.tok.num || n <= 0 {
			return Extent{}, p.errorf("array extent must be a positive integer")
		}
		return Extent{Lit: n}, p.advance()
	default:
		return Extent{}, p.errorf("expected extent, found %s", p.tok)
	}
}

func (p *parser) loop(prog *Program) (*Loop, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume 'loop'
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	l := &Loop{Var: v, Lo: lo, Hi: hi, Pos: pos}
	for !p.atPunct("}") {
		st, err := p.assign(prog)
		if err != nil {
			return nil, err
		}
		l.Body = append(l.Body, st)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if len(l.Body) == 0 {
		return nil, fmt.Errorf("irl:%s: empty loop body", pos)
	}
	return l, nil
}

func (p *parser) assign(prog *Program) (*Assign, error) {
	pos := p.tok.pos
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &Assign{Pos: pos}
	if p.atPunct("[") {
		idx, err := p.indexSuffix(name, pos)
		if err != nil {
			return nil, err
		}
		if prog.Array(name) == nil {
			return nil, fmt.Errorf("irl:%s: assignment to undeclared array %q", pos, name)
		}
		st.Target = idx
	} else {
		st.Scalar = name
	}
	switch {
	case p.tok.kind == tokOpEq && p.tok.text == "+=":
		st.Op = OpAdd
	case p.tok.kind == tokOpEq && p.tok.text == "-=":
		st.Op = OpSub
	case p.tok.kind == tokOpEq && p.tok.text == "*=":
		st.Op = OpMul
	case p.tok.kind == tokIdent && (p.tok.text == "min" || p.tok.text == "max"):
		// `min=` / `max=` fold assignments lex as an identifier followed
		// by '='.
		opName := p.tok.text
		if opName == "min" {
			st.Op = OpMin
		} else {
			st.Op = OpMax
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.atPunct("=") {
			return nil, p.errorf("expected '=' after %q, found %s", opName, p.tok)
		}
	case p.atPunct("="):
		st.Op = OpSet
	default:
		return nil, p.errorf("expected '=', '+=', '-=', '*=', 'min=' or 'max=', found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	st.RHS, err = p.expr()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// expr parses addition-level expressions.
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.tok.text[0]
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") {
		op := p.tok.text[0]
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

var builtins = map[string]int{"sqrt": 1, "abs": 1, "min": 2, "max": 2}

func (p *parser) factor() (Expr, error) {
	pos := p.tok.pos
	switch {
	case p.tok.kind == tokNum:
		v := p.tok.num
		return &Num{Val: v, Pos: pos}, p.advance()
	case p.atPunct("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &UnExpr{X: x, Pos: pos}, nil
	case p.atPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if nargs, ok := builtins[name]; ok && p.atPunct("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &CallExpr{Fn: name, Pos: pos}
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.atPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if len(call.Args) != nargs {
				return nil, fmt.Errorf("irl:%s: %s takes %d arguments, got %d", pos, name, nargs, len(call.Args))
			}
			return call, nil
		}
		if p.atPunct("[") {
			return p.indexSuffix(name, pos)
		}
		return &Ident{Name: name, Pos: pos}, nil
	default:
		return nil, p.errorf("expected expression, found %s", p.tok)
	}
}

// indexSuffix parses `[e]` or `[e1, e2]` after an array name.
func (p *parser) indexSuffix(name string, pos Pos) (*IndexExpr, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	ix := &IndexExpr{Array: name, Pos: pos}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ix.Index = append(ix.Index, e)
		if p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(ix.Index) > 2 {
		return nil, fmt.Errorf("irl:%s: array %q indexed with %d subscripts", pos, name, len(ix.Index))
	}
	return ix, p.expectPunct("]")
}
