package lang

import (
	"fmt"
	"strings"
)

// Format renders a program back to IRL source, used to display the result
// of compiler transformations (e.g. the fissioned program).
func Format(p *Program) string {
	var b strings.Builder
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "param %s\n", strings.Join(p.Params, ", "))
	}
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.String()
		}
		fmt.Fprintf(&b, "array %s[%s]", a.Name, strings.Join(dims, ", "))
		if a.Int {
			b.WriteString(" int")
		}
		b.WriteByte('\n')
	}
	for _, l := range p.Loops {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "loop %s = %s, %s {\n", l.Var, exprSrc(l.Lo), exprSrc(l.Hi))
		for _, st := range l.Body {
			lhs := st.Scalar
			if st.Target != nil {
				lhs = exprSrc(st.Target)
			}
			fmt.Fprintf(&b, "    %s %s %s\n", lhs, st.Op, exprSrc(st.RHS))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// exprSrc renders an expression without the fully-parenthesized form of
// Expr.String (top-level parens dropped for readability).
func exprSrc(e Expr) string {
	s := e.String()
	if be, ok := e.(*BinExpr); ok {
		_ = be
		s = strings.TrimPrefix(s, "(")
		s = strings.TrimSuffix(s, ")")
	}
	return s
}
