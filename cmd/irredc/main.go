// Command irredc is the IRL compiler driver: it parses an irregular-loop
// program, runs the paper's Section 4 analysis (array sections, reference
// groups), performs loop fission when a loop updates several groups, and
// prints the analysis report, the fissioned program, and the generated
// Threaded-C-style phase program.
//
// Usage:
//
//	irredc [-lint] [-describe] [-fissioned] [-threaded] [-opt-report] [file.irl]
//
// With no file, source is read from standard input. With no mode flags,
// everything is printed. -lint runs the static analyzers first and refuses
// to generate code when any finding is Error-level. -opt-report prints the
// bounds-proof artifact of every irregular loop: which subscript
// obligations the interval analysis discharged symbolically (unproven
// accesses fall back to checked execution at run time, when the proof is
// re-attempted against concrete parameters and scanned indirection
// contents).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"irred/internal/codegen"
	"irred/internal/interp"
	"irred/internal/lang"
	"irred/internal/lint"
)

func main() {
	describe := flag.Bool("describe", false, "print the analysis report (sections, reference groups)")
	optimize := flag.Bool("O", false, "run common-subexpression elimination before analysis")
	fissioned := flag.Bool("fissioned", false, "print the program after loop fission")
	threaded := flag.Bool("threaded", false, "print the generated Threaded-C-style listing")
	doLint := flag.Bool("lint", false, "run the static analyzers; refuse codegen on error findings")
	optReport := flag.Bool("opt-report", false, "print the bounds-proof artifact per irregular loop")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: irredc [flags] [file.irl]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "irredc:", err)
		os.Exit(1)
	}

	if *doLint {
		diags, err := lint.RunSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			os.Exit(1)
		}
		diags.Render(os.Stderr)
		if diags.HasErrors() {
			fmt.Fprintln(os.Stderr, "irredc: lint found errors; code generation refused")
			os.Exit(1)
		}
	}

	compileFn := codegen.Compile
	if *optimize {
		compileFn = codegen.CompileOptimized
	}
	unit, err := compileFn(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "irredc:", err)
		os.Exit(1)
	}

	if *optReport {
		fmt.Println("=== bounds proof (symbolic) ===")
		env := interp.NewEnv(unit.Fissioned)
		for _, p := range unit.Plans {
			if p.Kind != codegen.Irregular {
				continue
			}
			fmt.Printf("%s: %s", p.Name, p.ComputeFacts(env).Report())
		}
	}

	all := !*describe && !*fissioned && !*threaded && !*optReport
	if *describe || all {
		fmt.Println("=== analysis ===")
		fmt.Print(unit.Describe())
	}
	if *fissioned || all {
		fmt.Println("=== after loop fission ===")
		fmt.Print(lang.Format(unit.Fissioned))
	}
	if *threaded || all {
		fmt.Println("=== generated Threaded-C ===")
		for _, p := range unit.Plans {
			fmt.Print(p.ThreadedC())
			fmt.Println()
		}
	}
}
