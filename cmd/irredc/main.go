// Command irredc is the IRL compiler driver: it parses an irregular-loop
// program, runs the paper's Section 4 analysis (array sections, reference
// groups), performs loop fission when a loop updates several groups, and
// prints the analysis report, the fissioned program, and the generated
// Threaded-C-style phase program.
//
// Usage:
//
//	irredc [-lint] [-describe] [-fissioned] [-threaded] [-opt-report] [file.irl]
//	irredc -legality-report [file.irl ...]
//	irredc -reuse-report [file.irl ...]
//
// With no file, source is read from standard input. With no mode flags,
// everything is printed. -lint runs the static analyzers first and refuses
// to generate code when any finding is Error-level. -opt-report prints the
// bounds-proof artifact of every irregular loop: which subscript
// obligations the interval analysis discharged symbolically (unproven
// accesses fall back to checked execution at run time, when the proof is
// re-attempted against concrete parameters and scanned indirection
// contents). -legality-report runs the schedule-legality prover over every
// named file (it accepts several) and prints each loop's schedule license
// with its machine-checked justification ledger: which fold operators were
// inferred, which algebraic properties were proven or disproven (with
// counterexamples), and which parallel schedules — rotation, tiling,
// tree-fold — the loop is licensed for. The legality pass is total, so the
// report covers programs the Section 4 analysis would reject.
// -reuse-report runs the inter-loop schedule-reuse prover instead: it
// prints, per program, which loops are licensed to execute against an
// earlier loop's inspector schedules (with the named-rule justification
// ledger) and which reuses were refused — exiting nonzero when a license
// fails its own Verify self-check, i.e. when a grant is unsound.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"irred/internal/buildinfo"
	"irred/internal/codegen"
	"irred/internal/dataflow"
	"irred/internal/interp"
	"irred/internal/lang"
	"irred/internal/lint"
)

func main() {
	describe := flag.Bool("describe", false, "print the analysis report (sections, reference groups)")
	optimize := flag.Bool("O", false, "run common-subexpression elimination before analysis")
	fissioned := flag.Bool("fissioned", false, "print the program after loop fission")
	threaded := flag.Bool("threaded", false, "print the generated Threaded-C-style listing")
	doLint := flag.Bool("lint", false, "run the static analyzers; refuse codegen on error findings")
	optReport := flag.Bool("opt-report", false, "print the bounds-proof artifact per irregular loop")
	legality := flag.Bool("legality-report", false, "print the schedule license and justification ledger per loop")
	reuse := flag.Bool("reuse-report", false, "print the inter-loop schedule-reuse ledger; exit nonzero on unsound reuse")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredc " + buildinfo.Get().String())
		return
	}
	if *legality {
		legalityReport(flag.Args())
		return
	}
	if *reuse {
		reuseReport(flag.Args())
		return
	}

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: irredc [flags] [file.irl]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "irredc:", err)
		os.Exit(1)
	}

	if *doLint {
		diags, err := lint.RunSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			os.Exit(1)
		}
		diags.Render(os.Stderr)
		if diags.HasErrors() {
			fmt.Fprintln(os.Stderr, "irredc: lint found errors; code generation refused")
			os.Exit(1)
		}
	}

	compileFn := codegen.Compile
	if *optimize {
		compileFn = codegen.CompileOptimized
	}
	unit, err := compileFn(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "irredc:", err)
		os.Exit(1)
	}

	if *optReport {
		fmt.Println("=== bounds proof (symbolic) ===")
		env := interp.NewEnv(unit.Fissioned)
		for _, p := range unit.Plans {
			if p.Kind != codegen.Irregular {
				continue
			}
			fmt.Printf("%s: %s", p.Name, p.ComputeFacts(env).Report())
		}
	}

	all := !*describe && !*fissioned && !*threaded && !*optReport && !*legality
	if *describe || all {
		fmt.Println("=== analysis ===")
		fmt.Print(unit.Describe())
	}
	if *fissioned || all {
		fmt.Println("=== after loop fission ===")
		fmt.Print(lang.Format(unit.Fissioned))
	}
	if *threaded || all {
		fmt.Println("=== generated Threaded-C ===")
		for _, p := range unit.Plans {
			fmt.Print(p.ThreadedC())
			fmt.Println()
		}
	}
}

// legalityReport runs the schedule-legality prover over each file (or
// stdin when none are named) and prints every loop's license with its
// justification ledger. Each ledger is re-verified before printing, so a
// rendered grant is always backed by a machine-checked proof chain. The
// exit status is 1 when any file fails to parse, any ledger fails its
// self-check, or any loop holding a reduction is refused every parallel
// schedule — so CI can gate on legality.
func legalityReport(files []string) {
	type input struct {
		name string
		src  []byte
	}
	var inputs []input
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			os.Exit(1)
		}
		inputs = append(inputs, input{"<stdin>", src})
	}
	failed := false
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			failed = true
			continue
		}
		inputs = append(inputs, input{name, src})
	}
	for _, in := range inputs {
		prog, err := lang.Parse(string(in.src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredc: %s: %v\n", in.name, err)
			failed = true
			continue
		}
		fmt.Printf("=== schedule legality: %s ===\n", in.name)
		for _, lic := range dataflow.LegalizeProgram(prog, dataflow.Options{}) {
			if err := lic.Verify(); err != nil {
				fmt.Fprintf(os.Stderr, "irredc: %s: ledger self-check failed: %v\n", in.name, err)
				failed = true
			}
			fmt.Print(lic.Report())
			if len(lic.Ops) > 0 && !lic.Rotation && !lic.Tile {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// reuseReport runs the inter-loop schedule-reuse prover over each file
// (or stdin when none are named) and prints the per-program ledger:
// grants with justifications, refusals with positions. Every license is
// re-verified before printing; a failed self-check — an unsound grant —
// exits 1 so CI can gate on reuse soundness. Refusals alone are not
// failures: refusing is the sound answer for a rewired indirection.
func reuseReport(files []string) {
	type input struct {
		name string
		src  []byte
	}
	var inputs []input
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			os.Exit(1)
		}
		inputs = append(inputs, input{"<stdin>", src})
	}
	failed := false
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredc:", err)
			failed = true
			continue
		}
		inputs = append(inputs, input{name, src})
	}
	for _, in := range inputs {
		prog, err := lang.Parse(string(in.src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredc: %s: %v\n", in.name, err)
			failed = true
			continue
		}
		rl := dataflow.ProveReuse(prog, dataflow.Options{})
		if err := rl.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "irredc: %s: reuse ledger self-check failed: %v\n", in.name, err)
			failed = true
		}
		fmt.Printf("=== schedule reuse: %s ===\n", in.name)
		fmt.Print(rl.Report())
	}
	if failed {
		os.Exit(1)
	}
}
