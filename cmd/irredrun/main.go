// Command irredrun executes one of the paper's kernels under a chosen
// strategy, either on the simulated EARTH machine (reporting simulated
// MANNA seconds, like the paper) or natively on goroutines (reporting wall
// clock and verifying against the sequential kernel).
//
// Examples:
//
//	irredrun -kernel euler -dataset 2k -p 32 -k 2 -dist cyclic
//	irredrun -kernel mvm -dataset W -p 16 -k 2
//	irredrun -kernel moldyn -dataset 10k -p 8 -k 4 -engine native -steps 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"irred/internal/earth"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/machine"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/sim"
	"irred/internal/sparse"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irredrun: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	kernel := flag.String("kernel", "euler", "kernel: euler | moldyn | mvm")
	dataset := flag.String("dataset", "2k", "dataset: 2k | 10k (euler, moldyn); S | W | A | B (mvm)")
	p := flag.Int("p", 8, "processors")
	k := flag.Int("k", 2, "unrolling factor (phases per processor = k*p)")
	distName := flag.String("dist", "cyclic", "iteration distribution: block | cyclic")
	steps := flag.Int("steps", 100, "timesteps")
	engine := flag.String("engine", "sim", "engine: sim (modelled EARTH) | native (goroutines)")
	seed := flag.Int64("seed", 1, "dataset seed")
	trace := flag.Bool("trace", false, "print a Gantt chart of EU occupancy (sim engine)")
	flag.Parse()

	var dist inspector.Dist
	switch strings.ToLower(*distName) {
	case "block":
		dist = inspector.Block
	case "cyclic":
		dist = inspector.Cyclic
	default:
		fail("unknown distribution %q", *distName)
	}

	switch *engine {
	case "sim":
		runSim(*kernel, *dataset, *p, *k, dist, *steps, *seed, *trace)
	case "native":
		runNative(*kernel, *dataset, *p, *k, dist, *steps, *seed)
	default:
		fail("unknown engine %q", *engine)
	}
}

func buildLoop(kernel, dataset string, p, k int, dist inspector.Dist, seed int64) (*rts.Loop, string) {
	switch kernel {
	case "euler":
		var nodes, edges int
		switch strings.ToLower(dataset) {
		case "2k":
			nodes, edges = mesh.Paper2K()
		case "10k":
			nodes, edges = mesh.Paper10K()
		default:
			fail("euler datasets: 2k, 10k")
		}
		m := mesh.Generate(nodes, edges, seed)
		return kernels.NewEuler(m, seed).Loop(p, k, dist),
			fmt.Sprintf("euler %s (%d nodes, %d edges)", dataset, nodes, edges)
	case "moldyn":
		var sys *moldyn.System
		switch strings.ToLower(dataset) {
		case "2k":
			sys = moldyn.Paper2K(seed)
		case "10k":
			sys = moldyn.Paper10K(seed)
		default:
			fail("moldyn datasets: 2k, 10k")
		}
		return kernels.NewMoldyn(sys).Loop(p, k, dist),
			fmt.Sprintf("moldyn %s (%d molecules, %d interactions)", dataset, sys.N, sys.NumInteractions())
	case "mvm":
		var class sparse.Class
		switch strings.ToUpper(dataset) {
		case "S":
			class = sparse.ClassS
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		default:
			fail("mvm datasets: S, W, A, B")
		}
		a := sparse.Generate(class, uint64(seed))
		return kernels.NewMVM(a).Loop(p, k, dist),
			fmt.Sprintf("mvm class %s (n=%d, nnz=%d)", class.Name, class.N, class.NNZ)
	default:
		fail("unknown kernel %q", kernel)
	}
	return nil, ""
}

func runSim(kernel, dataset string, p, k int, dist inspector.Dist, steps int, seed int64, trace bool) {
	l, desc := buildLoop(kernel, dataset, p, k, dist, seed)
	cm := machine.MANNA()
	fmt.Printf("%s on simulated EARTH/MANNA: P=%d k=%d %s, %d timesteps\n", desc, p, k, dist, steps)

	opt := rts.SimOptions{Steps: steps}
	var tr *earth.Trace
	if trace {
		tr = &earth.Trace{}
		opt.Trace = tr
	}
	seqC, seqS := rts.RunSequentialSim(l, opt)
	res, err := rts.RunSim(l, opt)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("sequential:     %10.2fs simulated\n", seqS)
	fmt.Printf("parallel:       %10.2fs simulated (%.2fx speedup)\n", res.Seconds, float64(seqC)/float64(res.Cycles))
	fmt.Printf("per step:       %10.4fs\n", cm.Seconds(res.PerStep))
	fmt.Printf("inspector:      %10.4fs (run once)\n", cm.Seconds(res.InspectorCycles))
	fmt.Printf("traffic:        %10.0f messages/step, %.0f bytes/step\n", res.MsgsPerStep, res.BytesPerStep)
	fmt.Printf("phase balance:  max %d iters/phase vs %.1f average\n", res.MaxPhaseIters, res.AvgPhaseIters)
	fmt.Printf("EU utilization: %10.1f%%  (SU: %.1f%%)\n", 100*res.EUUtilization, 100*res.SUUtilization)
	if tr != nil {
		// Render the simulated window (a few timesteps): '#' = EU busy.
		var end sim.Time
		for _, f := range tr.Fibers {
			if f.End > end {
				end = f.End
			}
		}
		fmt.Printf("\nEU occupancy over the simulated window (%d fibers, %d messages):\n",
			len(tr.Fibers), len(tr.Msgs))
		fmt.Print(tr.Gantt(p, end, 100))
	}
}

func runNative(kernel, dataset string, p, k int, dist inspector.Dist, steps int, seed int64) {
	fmt.Printf("native run: P=%d goroutines, k=%d, %s, %d timesteps\n", p, k, dist, steps)
	switch kernel {
	case "euler":
		var nodes, edges int
		if strings.ToLower(dataset) == "10k" {
			nodes, edges = mesh.Paper10K()
		} else {
			nodes, edges = mesh.Paper2K()
		}
		m := mesh.Generate(nodes, edges, seed)
		eu := kernels.NewEuler(m, seed)

		t0 := time.Now()
		want := eu.RunSequential(steps)
		seqDur := time.Since(t0)

		nat, q, err := eu.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur := time.Since(t0)
		fmt.Printf("sequential: %v   parallel: %v   speedup %.2fx\n", seqDur, parDur, seqDur.Seconds()/parDur.Seconds())
		fmt.Printf("verification: max rel diff vs sequential = %.2e\n", maxRelDiff(q, want))
	case "moldyn":
		var sys *moldyn.System
		if strings.ToLower(dataset) == "10k" {
			sys = moldyn.Paper10K(seed)
		} else {
			sys = moldyn.Paper2K(seed)
		}
		md := kernels.NewMoldyn(sys)
		t0 := time.Now()
		wantPos, _ := md.RunSequential(steps)
		seqDur := time.Since(t0)
		nat, pos, _, err := md.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur := time.Since(t0)
		fmt.Printf("sequential: %v   parallel: %v   speedup %.2fx\n", seqDur, parDur, seqDur.Seconds()/parDur.Seconds())
		fmt.Printf("verification: max rel diff vs sequential = %.2e\n", maxRelDiff(pos, wantPos))
	case "mvm":
		var class sparse.Class
		switch strings.ToUpper(dataset) {
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		default:
			class = sparse.ClassS
		}
		a := sparse.Generate(class, uint64(seed))
		mv := kernels.NewMVM(a)
		t0 := time.Now()
		want := mv.RunSequential(steps)
		seqDur := time.Since(t0)
		nat, err := mv.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur := time.Since(t0)
		fmt.Printf("sequential: %v   parallel: %v   speedup %.2fx\n", seqDur, parDur, seqDur.Seconds()/parDur.Seconds())
		fmt.Printf("verification: max rel diff vs sequential = %.2e\n", maxRelDiff(nat.X, want))
	default:
		fail("unknown kernel %q", kernel)
	}
}

func maxRelDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / (1 + math.Abs(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}
