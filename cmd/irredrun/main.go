// Command irredrun executes one of the paper's kernels under a chosen
// strategy, either on the simulated EARTH machine (reporting simulated
// MANNA seconds, like the paper), natively on goroutines (reporting wall
// clock and verifying against the sequential kernel), or remotely on an
// irredd reduction service (-server).
//
// Examples:
//
//	irredrun -kernel euler -dataset 2k -p 32 -k 2 -dist cyclic
//	irredrun -kernel mvm -dataset W -p 16 -k 2
//	irredrun -kernel moldyn -dataset 10k -p 8 -k 4 -engine native -steps 10
//	irredrun -kernel mvm -dataset S -p 4 -k 2 -steps 5 -engine native -json
//	irredrun -kernel mvm -dataset S -p 4 -k 2 -steps 5 -server http://127.0.0.1:8321
//	irredrun -kernel mvm -dataset S -steps 5 -auto -bench bench
//
// -auto ignores the strategy flags: it loads the latest BENCH_*.json
// trajectory from -bench (written by irredsweep), picks the
// measured-fastest (engine, P, k, dist) for the workload under the
// kernel's compiled schedule license, and executes that cell.
//
// -json emits one machine-readable object on stdout (timings, result hash)
// so tooling can diff local vs server runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"irred/internal/buildinfo"
	"irred/internal/earth"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/machine"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/service"
	"irred/internal/service/client"
	"irred/internal/sim"
	"irred/internal/sparse"
	"irred/internal/sweep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irredrun: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	kernel := flag.String("kernel", "euler", "kernel: euler | moldyn | mvm")
	dataset := flag.String("dataset", "2k", "dataset: 2k | 10k (euler, moldyn); S | W | A | B (mvm)")
	p := flag.Int("p", 8, "processors")
	k := flag.Int("k", 2, "unrolling factor (phases per processor = k*p)")
	distName := flag.String("dist", "cyclic", "iteration distribution: block | cyclic")
	steps := flag.Int("steps", 100, "timesteps")
	engine := flag.String("engine", "sim", "engine: sim (modelled EARTH) | native (goroutines)")
	seed := flag.Int64("seed", 1, "dataset seed")
	trace := flag.Bool("trace", false, "print a Gantt chart of EU occupancy (sim engine)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON object instead of prose")
	server := flag.String("server", "", "irredd base URL: submit the job there (native semantics) instead of running locally")
	auto := flag.Bool("auto", false, "pick (engine, P, k, dist) from the persisted BENCH trajectory instead of the flags")
	benchDir := flag.String("bench", "bench", "BENCH trajectory directory consulted by -auto")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredrun " + buildinfo.Get().String())
		return
	}
	if *auto {
		runAuto(*kernel, *dataset, *benchDir, *steps, *seed, *jsonOut)
		return
	}

	var dist inspector.Dist
	switch strings.ToLower(*distName) {
	case "block":
		dist = inspector.Block
	case "cyclic":
		dist = inspector.Cyclic
	default:
		fail("unknown distribution %q", *distName)
	}

	switch {
	case *server != "":
		runServer(*server, *kernel, *dataset, *p, *k, *distName, *steps, *seed, *jsonOut)
	case *engine == "sim":
		runSim(*kernel, *dataset, *p, *k, dist, *steps, *seed, *trace, *jsonOut)
	case *engine == "native":
		runNative(*kernel, *dataset, *p, *k, dist, *steps, *seed, *jsonOut)
	default:
		fail("unknown engine %q", *engine)
	}
}

// runReport is the -json payload: one object per run, identical fields for
// local native and server runs so results can be diffed (result_sha256 is
// bit-exact across processes for the same job).
type runReport struct {
	Engine  string `json:"engine"` // sim | native | server
	Kernel  string `json:"kernel"`
	Dataset string `json:"dataset"`
	P       int    `json:"p"`
	K       int    `json:"k"`
	Dist    string `json:"dist"`
	Steps   int    `json:"steps"`
	Seed    int64  `json:"seed"`

	// Native/server runs.
	SeqMS        float64 `json:"seq_ms,omitempty"`
	ParMS        float64 `json:"par_ms,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	MaxRelDiff   float64 `json:"max_rel_diff,omitempty"`
	ResultLen    int     `json:"result_len,omitempty"`
	ResultSHA256 string  `json:"result_sha256,omitempty"`

	// Server runs.
	JobID    string  `json:"job_id,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	QueuedMS float64 `json:"queued_ms,omitempty"`
	RunMS    float64 `json:"run_ms,omitempty"`

	// Sim runs.
	SimSeconds    float64 `json:"sim_seconds,omitempty"`
	SimSeqSeconds float64 `json:"sim_seq_seconds,omitempty"`
	MsgsPerStep   float64 `json:"msgs_per_step,omitempty"`
	BytesPerStep  float64 `json:"bytes_per_step,omitempty"`

	// Auto runs.
	TunedFrom string `json:"tuned_from,omitempty"` // BENCH cell ID or "heuristic"
	BenchPath string `json:"bench_path,omitempty"` // trajectory file consulted
}

func emitJSON(rep runReport) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(rep); err != nil {
		fail("%v", err)
	}
}

func buildLoop(kernel, dataset string, p, k int, dist inspector.Dist, seed int64) (*rts.Loop, string) {
	switch kernel {
	case "euler":
		var nodes, edges int
		switch strings.ToLower(dataset) {
		case "2k":
			nodes, edges = mesh.Paper2K()
		case "10k":
			nodes, edges = mesh.Paper10K()
		default:
			fail("euler datasets: 2k, 10k")
		}
		m := mesh.Generate(nodes, edges, seed)
		return kernels.NewEuler(m, seed).Loop(p, k, dist),
			fmt.Sprintf("euler %s (%d nodes, %d edges)", dataset, nodes, edges)
	case "moldyn":
		var sys *moldyn.System
		switch strings.ToLower(dataset) {
		case "2k":
			sys = moldyn.Paper2K(seed)
		case "10k":
			sys = moldyn.Paper10K(seed)
		default:
			fail("moldyn datasets: 2k, 10k")
		}
		return kernels.NewMoldyn(sys).Loop(p, k, dist),
			fmt.Sprintf("moldyn %s (%d molecules, %d interactions)", dataset, sys.N, sys.NumInteractions())
	case "mvm":
		var class sparse.Class
		switch strings.ToUpper(dataset) {
		case "S":
			class = sparse.ClassS
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		default:
			fail("mvm datasets: S, W, A, B")
		}
		a := sparse.Generate(class, uint64(seed))
		return kernels.NewMVM(a).Loop(p, k, dist),
			fmt.Sprintf("mvm class %s (n=%d, nnz=%d)", class.Name, class.N, class.NNZ)
	default:
		fail("unknown kernel %q", kernel)
	}
	return nil, ""
}

func runSim(kernel, dataset string, p, k int, dist inspector.Dist, steps int, seed int64, trace, jsonOut bool) {
	l, desc := buildLoop(kernel, dataset, p, k, dist, seed)
	cm := machine.MANNA()

	opt := rts.SimOptions{Steps: steps}
	var tr *earth.Trace
	if trace {
		tr = &earth.Trace{}
		opt.Trace = tr
	}
	seqC, seqS := rts.RunSequentialSim(l, opt)
	res, err := rts.RunSim(l, opt)
	if err != nil {
		fail("%v", err)
	}
	speedup := float64(seqC) / float64(res.Cycles)
	if jsonOut {
		emitJSON(runReport{
			Engine: "sim", Kernel: kernel, Dataset: dataset, P: p, K: k,
			Dist: dist.String(), Steps: steps, Seed: seed,
			Speedup:       speedup,
			SimSeconds:    res.Seconds,
			SimSeqSeconds: seqS,
			MsgsPerStep:   res.MsgsPerStep,
			BytesPerStep:  res.BytesPerStep,
		})
		return
	}
	fmt.Printf("%s on simulated EARTH/MANNA: P=%d k=%d %s, %d timesteps\n", desc, p, k, dist, steps)
	fmt.Printf("sequential:     %10.2fs simulated\n", seqS)
	fmt.Printf("parallel:       %10.2fs simulated (%.2fx speedup)\n", res.Seconds, speedup)
	fmt.Printf("per step:       %10.4fs\n", cm.Seconds(res.PerStep))
	fmt.Printf("inspector:      %10.4fs (run once)\n", cm.Seconds(res.InspectorCycles))
	fmt.Printf("traffic:        %10.0f messages/step, %.0f bytes/step\n", res.MsgsPerStep, res.BytesPerStep)
	fmt.Printf("phase balance:  max %d iters/phase vs %.1f average\n", res.MaxPhaseIters, res.AvgPhaseIters)
	fmt.Printf("EU utilization: %10.1f%%  (SU: %.1f%%)\n", 100*res.EUUtilization, 100*res.SUUtilization)
	if tr != nil {
		// Render the simulated window (a few timesteps): '#' = EU busy.
		var end sim.Time
		for _, f := range tr.Fibers {
			if f.End > end {
				end = f.End
			}
		}
		fmt.Printf("\nEU occupancy over the simulated window (%d fibers, %d messages):\n",
			len(tr.Fibers), len(tr.Msgs))
		fmt.Print(tr.Gantt(p, end, 100))
	}
}

// nativeRun executes one kernel natively and returns the parallel result,
// the sequential reference, and both durations.
func nativeRun(kernel, dataset string, p, k int, dist inspector.Dist, steps int, seed int64) (result, want []float64, seqDur, parDur time.Duration) {
	switch kernel {
	case "euler":
		var nodes, edges int
		if strings.ToLower(dataset) == "10k" {
			nodes, edges = mesh.Paper10K()
		} else {
			nodes, edges = mesh.Paper2K()
		}
		m := mesh.Generate(nodes, edges, seed)
		eu := kernels.NewEuler(m, seed)
		t0 := time.Now()
		want = eu.RunSequential(steps)
		seqDur = time.Since(t0)
		nat, q, err := eu.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur = time.Since(t0)
		result = q
	case "moldyn":
		var sys *moldyn.System
		if strings.ToLower(dataset) == "10k" {
			sys = moldyn.Paper10K(seed)
		} else {
			sys = moldyn.Paper2K(seed)
		}
		md := kernels.NewMoldyn(sys)
		t0 := time.Now()
		wantPos, _ := md.RunSequential(steps)
		seqDur = time.Since(t0)
		nat, pos, _, err := md.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur = time.Since(t0)
		result, want = pos, wantPos
	case "mvm":
		var class sparse.Class
		switch strings.ToUpper(dataset) {
		case "W":
			class = sparse.ClassW
		case "A":
			class = sparse.ClassA
		case "B":
			class = sparse.ClassB
		default:
			class = sparse.ClassS
		}
		a := sparse.Generate(class, uint64(seed))
		mv := kernels.NewMVM(a)
		t0 := time.Now()
		want = mv.RunSequential(steps)
		seqDur = time.Since(t0)
		nat, err := mv.NewNative(p, k, dist)
		if err != nil {
			fail("%v", err)
		}
		t0 = time.Now()
		if err := nat.Run(steps); err != nil {
			fail("%v", err)
		}
		parDur = time.Since(t0)
		result = nat.X
	default:
		fail("unknown kernel %q", kernel)
	}
	return result, want, seqDur, parDur
}

func runNative(kernel, dataset string, p, k int, dist inspector.Dist, steps int, seed int64, jsonOut bool) {
	result, want, seqDur, parDur := nativeRun(kernel, dataset, p, k, dist, steps, seed)
	diff := maxRelDiff(result, want)
	if jsonOut {
		emitJSON(runReport{
			Engine: "native", Kernel: kernel, Dataset: dataset, P: p, K: k,
			Dist: dist.String(), Steps: steps, Seed: seed,
			SeqMS:        float64(seqDur) / float64(time.Millisecond),
			ParMS:        float64(parDur) / float64(time.Millisecond),
			Speedup:      seqDur.Seconds() / parDur.Seconds(),
			MaxRelDiff:   diff,
			ResultLen:    len(result),
			ResultSHA256: service.HashResult(result),
		})
		return
	}
	fmt.Printf("native run: P=%d goroutines, k=%d, %s, %d timesteps\n", p, k, dist, steps)
	fmt.Printf("sequential: %v   parallel: %v   speedup %.2fx\n", seqDur, parDur, seqDur.Seconds()/parDur.Seconds())
	fmt.Printf("verification: max rel diff vs sequential = %.2e\n", diff)
}

// runServer submits the job to an irredd daemon and reports its status.
// The server runs the same native engine with the same deterministic
// dataset construction, so result_sha256 matches a local -engine native
// -json run of the same parameters bit for bit.
func runServer(base, kernel, dataset string, p, k int, distName string, steps int, seed int64, jsonOut bool) {
	c := client.New(base)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		fail("server %s not healthy: %v", base, err)
	}
	spec := service.JobSpec{
		Kernel:  kernel,
		Dataset: dataset,
		Seed:    seed,
		P:       p,
		K:       k,
		Dist:    strings.ToLower(distName),
		Steps:   steps,
	}
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		fail("%v", err)
	}
	if st.State != service.StateDone {
		fail("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	if jsonOut {
		emitJSON(runReport{
			Engine: "server", Kernel: kernel, Dataset: dataset, P: p, K: k,
			Dist: strings.ToLower(distName), Steps: steps, Seed: seed,
			ParMS:        st.RunMS,
			ResultLen:    st.ResultLen,
			ResultSHA256: st.ResultSHA256,
			JobID:        st.ID,
			CacheHit:     st.CacheHit,
			QueuedMS:     st.QueuedMS,
			RunMS:        st.RunMS,
		})
		return
	}
	fmt.Printf("server run on %s: job %s, P=%d k=%d %s, %d timesteps\n", base, st.ID, p, k, distName, steps)
	fmt.Printf("queued: %.1fms   run: %.1fms   schedule cache hit: %v\n", st.QueuedMS, st.RunMS, st.CacheHit)
	fmt.Printf("result: %d values, sha256 %s\n", st.ResultLen, st.ResultSHA256)
}

// runAuto loads the latest BENCH trajectory, asks the tuner for the
// measured-fastest strategy for this workload under the kernel's compiled
// schedule license, and executes the picked cell through the sweep
// harness — which can run every engine the trajectory may name (native,
// distributed, tree-fold, interpreter), not just the flag-selectable ones.
func runAuto(kernel, dataset, benchDir string, steps int, seed int64, jsonOut bool) {
	// Proof-elided picks are allowed: the sweep harness only elides checks
	// on loops carrying dataflow bounds proofs, so an unchecked cell is as
	// safe here as it was when it was measured.
	tn, path, err := rts.NewTunerFromDir(benchDir, rts.TunerOptions{AllowUnchecked: true})
	if err != nil {
		fail("-auto: %v (run irredsweep first to persist a trajectory)", err)
	}
	class := strings.ToLower(dataset)
	if kernel == "mvm" {
		class = strings.ToUpper(dataset)
	}
	pick := tn.Pick(kernel, class, sweep.KernelLicense(kernel))
	cell := sweep.Cell{
		Kernel: kernel, Class: class, Engine: pick.Engine,
		P: pick.P, K: pick.K, Dist: pick.Dist, Checked: pick.Checked,
	}
	bc := sweep.RunCell(cell, sweep.Options{Steps: steps, Warmup: 1, Repeats: 3, Seed: seed})
	if bc.Error != "" {
		fail("auto cell %s: %s", bc.ID, bc.Error)
	}
	if jsonOut {
		emitJSON(runReport{
			Engine: pick.Engine, Kernel: kernel, Dataset: class,
			P: pick.P, K: pick.K, Dist: pick.Dist, Steps: steps, Seed: seed,
			ParMS:     bc.Wall.Score(),
			TunedFrom: pick.Source,
			BenchPath: path,
		})
		return
	}
	fmt.Printf("auto-tuned from %s\n", path)
	fmt.Printf("pick for %s/%s: %s\n", kernel, class, pick)
	if pick.Source != "heuristic" {
		fmt.Printf("measured there:  %.3fms trimmed mean\n", pick.ScoreMS)
	}
	fmt.Printf("measured now:    %.3fms trimmed mean over %d runs of %d steps\n",
		bc.Wall.Score(), bc.Repeats, steps)
}

func maxRelDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / (1 + math.Abs(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}
