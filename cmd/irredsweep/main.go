// Command irredsweep is the auto-tuning benchmark harness: it expands a
// grid of (kernel, class, engine, P, k, distribution, checked, chaos)
// cells, measures every legal cell through the matching execution
// engine, and persists the results as a BENCH_<date>.json trajectory
// (plus CSV and JSONL artifacts) stamped with the commit, toolchain and
// machine that produced it.
//
// Examples:
//
//	irredsweep                                    # full default grid into ./bench
//	irredsweep -grid small -repeats 2             # the CI short sweep
//	irredsweep -kernels mvm -classes mvm=S -p 1,2,4 -engines native,sim
//	irredsweep -list                              # show cells + skips, run nothing
//	irredsweep -compare bench/BENCH_seed.json     # sweep, then gate against a baseline
//	irredsweep -compare old.json -against new.json  # gate two existing files, no sweep
//
// The comparison gate exits 2 when any matched cell regressed by more
// than -threshold (default +25%), which is what CI hangs the perf gate
// on. The persisted trajectories also feed the runtime tuner: irredrun
// -auto and irredd pick (engine, P, k) per workload from the latest
// BENCH file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"irred/internal/benchfmt"
	"irred/internal/buildinfo"
	"irred/internal/service"
	"irred/internal/sweep"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "irredsweep: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	gridName := flag.String("grid", "default", "base grid: default | small (CI short sweep) | adaptive (streaming amortization)")
	kernelsFlag := flag.String("kernels", "", "comma-separated kernels to sweep (override grid)")
	classesFlag := flag.String("classes", "", `per-kernel classes, e.g. "mvm=S,W;raw=tiny" (override grid)`)
	pFlag := flag.String("p", "", "comma-separated processor counts (override grid)")
	kFlag := flag.String("k", "", "comma-separated unrolling factors (override grid)")
	distsFlag := flag.String("dists", "", "comma-separated distributions: block,cyclic (override grid)")
	enginesFlag := flag.String("engines", "", "comma-separated engines: native,distributed,treefold,interp,sim (override grid)")
	checkedFlag := flag.String("checked", "", "bounds-check modes: both | checked | unchecked (override grid)")
	chaosFlag := flag.String("chaos", "", `fault spec to add as a chaos dimension, e.g. "seed=7,drop=0.02" (distributed engine only)`)
	deltaFlag := flag.String("delta-fracs", "", "comma-separated delta fractions for the adaptive kernel, e.g. 0.01,0.05,0.2 (override grid)")

	steps := flag.Int("steps", 3, "timesteps per measured run")
	warmup := flag.Int("warmup", 1, "discarded runs before measurement")
	repeats := flag.Int("repeats", 5, "measured runs per cell")
	trim := flag.Float64("trim", 0.2, "outlier-trim fraction for the trimmed mean")
	seed := flag.Int64("seed", 1, "dataset seed")
	cacheDir := flag.String("cache-dir", "", "schedule-cache persistence directory (default: in-memory only)")

	outDir := flag.String("out", "bench", "output directory for BENCH/CSV/JSONL artifacts")
	suffix := flag.String("suffix", "", "filename suffix to disambiguate multiple runs per day")
	list := flag.Bool("list", false, "print the expanded cells and skips, run nothing")
	quiet := flag.Bool("q", false, "suppress per-cell progress")

	compare := flag.String("compare", "", "baseline BENCH file: gate results against it (exit 2 on regression)")
	against := flag.String("against", "", "candidate BENCH file: compare -compare against this file instead of sweeping")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional slowdown before a matched cell is a regression")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredsweep " + buildinfo.Get().String())
		return
	}
	if *against != "" {
		if *compare == "" {
			fail("-against needs -compare <baseline>")
		}
		gate(*compare, *against, *threshold)
		return
	}

	g, err := buildGrid(*gridName, *kernelsFlag, *classesFlag, *pFlag, *kFlag, *distsFlag, *enginesFlag, *checkedFlag, *chaosFlag, *deltaFlag)
	if err != nil {
		fail("%v", err)
	}
	if *list {
		cells, skipped, err := g.Expand()
		if err != nil {
			fail("%v", err)
		}
		for _, c := range cells {
			fmt.Println(c.ID())
		}
		for _, s := range skipped {
			fmt.Printf("skip %s: %s\n", s.ID, s.Reason)
		}
		fmt.Printf("%d cells, %d skipped\n", len(cells), len(skipped))
		return
	}

	cache, err := service.NewCache(1024, *cacheDir)
	if err != nil {
		fail("%v", err)
	}
	opt := sweep.Options{
		Steps: *steps, Warmup: *warmup, Repeats: *repeats,
		TrimFrac: *trim, Seed: *seed, Cache: cache,
		Stamp: sweep.NewStamp(time.Now()),
	}
	if !*quiet {
		opt.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	start := time.Now()
	sum, err := sweep.Run(g, opt)
	if err != nil {
		fail("%v", err)
	}

	base := benchfmt.FileName(sum.Date, *suffix)
	benchPath := *outDir + "/" + base
	if err := benchfmt.Write(benchPath, sum); err != nil {
		fail("%v", err)
	}
	stem := strings.TrimSuffix(base, ".json")
	csvPath := *outDir + "/" + stem + ".csv"
	jsonlPath := *outDir + "/" + stem + ".jsonl"
	if err := sweep.WriteCSV(csvPath, sum); err != nil {
		fail("%v", err)
	}
	if err := sweep.WriteJSONL(jsonlPath, sum); err != nil {
		fail("%v", err)
	}

	errors := 0
	for i := range sum.Cells {
		if sum.Cells[i].Error != "" {
			errors++
			fmt.Fprintf(os.Stderr, "irredsweep: cell %s: %s\n", sum.Cells[i].ID, sum.Cells[i].Error)
		}
	}
	fmt.Printf("swept %d cells (%d errored, %d skipped) in %s on commit %s\n",
		len(sum.Cells), errors, len(sum.Skipped), time.Since(start).Round(time.Millisecond), shortCommit(sum.Commit))
	fmt.Printf("wrote %s, %s, %s\n", benchPath, csvPath, jsonlPath)

	if *compare != "" {
		gateAgainst(*compare, sum, *threshold)
	}
}

// gate compares two existing BENCH files and exits 2 on regression.
func gate(basePath, candPath string, threshold float64) {
	baseline, err := benchfmt.Read(basePath)
	if err != nil {
		fail("%v", err)
	}
	candidate, err := benchfmt.Read(candPath)
	if err != nil {
		fail("%v", err)
	}
	gateSummaries(baseline, candidate, threshold)
}

func gateAgainst(basePath string, candidate *benchfmt.Summary, threshold float64) {
	baseline, err := benchfmt.Read(basePath)
	if err != nil {
		fail("%v", err)
	}
	gateSummaries(baseline, candidate, threshold)
}

func gateSummaries(baseline, candidate *benchfmt.Summary, threshold float64) {
	comp := benchfmt.Compare(baseline, candidate, threshold)
	fmt.Print(comp.Table())
	if comp.Failed() {
		fmt.Fprintf(os.Stderr, "irredsweep: %d cells regressed beyond +%.0f%%\n", comp.Regressions, comp.Threshold*100)
		os.Exit(2)
	}
}

func shortCommit(c string) string {
	if len(c) > 12 {
		return c[:12]
	}
	if c == "" {
		return "unknown"
	}
	return c
}

// buildGrid starts from the named base grid and applies any dimension
// overrides from flags.
func buildGrid(name, kernels, classes, ps, ks, dists, engines, checked, chaos, deltas string) (sweep.Grid, error) {
	var g sweep.Grid
	switch name {
	case "default":
		g = sweep.DefaultGrid()
	case "small":
		g = sweep.SmallGrid()
	case "adaptive":
		g = sweep.AdaptiveGrid()
	default:
		return g, fmt.Errorf("unknown grid %q (default | small | adaptive)", name)
	}
	if kernels != "" {
		g.Kernels = splitList(kernels)
	}
	if classes != "" {
		m := map[string][]string{}
		for _, part := range strings.Split(classes, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			kernel, list, found := strings.Cut(part, "=")
			if !found {
				return g, fmt.Errorf(`classes: %q is not kernel=class,class`, part)
			}
			m[strings.TrimSpace(kernel)] = splitList(list)
		}
		g.Classes = m
	}
	var err error
	if ps != "" {
		if g.Ps, err = splitInts(ps); err != nil {
			return g, fmt.Errorf("p: %w", err)
		}
	}
	if ks != "" {
		if g.Ks, err = splitInts(ks); err != nil {
			return g, fmt.Errorf("k: %w", err)
		}
	}
	if dists != "" {
		g.Dists = splitList(dists)
	}
	if engines != "" {
		g.Engines = splitList(engines)
	}
	switch checked {
	case "":
	case "both":
		g.Checked = []bool{true, false}
	case "checked":
		g.Checked = []bool{true}
	case "unchecked":
		g.Checked = []bool{false}
	default:
		return g, fmt.Errorf("checked: %q (both | checked | unchecked)", checked)
	}
	if chaos != "" {
		g.Chaos = append(g.Chaos, chaos)
		if len(g.Chaos) == 1 {
			// No base entries: keep the clean dimension alongside chaos.
			g.Chaos = []string{"", chaos}
		}
	}
	if deltas != "" {
		g.DeltaFracs = g.DeltaFracs[:0]
		for _, v := range splitList(deltas) {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return g, fmt.Errorf("delta-fracs: %q is not a number", v)
			}
			g.DeltaFracs = append(g.DeltaFracs, f)
		}
	}
	return g, nil
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, v := range splitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", v)
		}
		out = append(out, n)
	}
	return out, nil
}
