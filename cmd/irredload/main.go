// Command irredload is a closed-loop load generator and soak harness for
// irredd. It drives a configurable mix of named kernels (mvm, euler,
// moldyn) through the HTTP API with N concurrent workers, optionally
// paced to a target aggregate QPS, and reports a latency histogram with
// percentiles, the cache-hit ratio observed server-side, and 429
// load-shed counts.
//
// It doubles as a correctness soak: the native engine is deterministic
// (per-element accumulation order is fixed by the portion rotation), so
// the result SHA-256 of a given (kernel, dataset, seed, P, k, steps)
// job is stable. irredload remembers the first SHA it sees per job key
// and counts any later disagreement as a mismatch; a nonzero mismatch
// count fails the run. CI runs this against a race-detector build of
// irredd.
//
//	irredload -addr http://127.0.0.1:8321 -duration 10s -concurrency 8
//	irredload -mix mvm=1,euler=2,moldyn=1 -qps 50 -duration 30s -json
//
// With -cluster url1,url2,url3 it drives a coordinator-light irredd fleet:
// submissions round-robin across the listed nodes (any node routes to the
// key's owner), a node that fails at the transport level is skipped for
// the next node in the list (client-side failover, counted per node), and
// the cache-hit ratio is aggregated across every node's /metrics — the
// number that shows whether consistent-hash sharding is keeping the fleet
// cache warm. The SHA oracles are unchanged: a cluster that loses or
// corrupts a job under failover fails the run exactly like a single node
// would.
//
// With -chaos it becomes the chaos soak: workers submit raw reduction jobs
// on the distributed engine carrying deterministic fault-injection specs
// (drops, corruptions, delays, duplicates at -chaos-rate), and every result
// SHA is checked against the sequential reduction computed locally — the
// server must recover to the bitwise-exact answer under fire. The daemon
// must be started with -chaos to accept these jobs.
//
// With -deltas it becomes the streaming soak: each worker opens one
// session, keeps a local mirror of its indirection arrays, and streams
// sparse deltas rewiring -delta-frac of the iterations per round. After
// every delta the server's result SHA must match the sequential reduction
// of the mirror — the resident incrementally-updated schedule is checked
// against ground truth on every step. A 410 (evicted or restarted daemon)
// reopens the session from the mirror; mismatches fail the run.
//
// Exit status: 0 on a clean run, 1 on result mismatches or job failures,
// 2 on usage/connection errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"irred/internal/buildinfo"
	"irred/internal/fault"
	"irred/internal/obs"
	"irred/internal/service"
	"irred/internal/service/client"
)

// jobKey identifies a deterministic job; equal keys must yield equal
// result hashes.
type jobKey struct {
	Kernel  string
	Dataset string
	Seed    int64
	P, K    int
	Steps   int
}

// spec builds the wire JobSpec for the key.
func (k jobKey) spec() service.JobSpec {
	return service.JobSpec{
		Kernel:  k.Kernel,
		Dataset: k.Dataset,
		Seed:    k.Seed,
		P:       k.P, K: k.K, Steps: k.Steps,
	}
}

// rawChaosSpec draws a deterministic raw reduction from seed: integral
// weights keep every partial sum exactly representable, so the expected
// result (and its SHA) is computable locally with SequentialRaw and any
// fault-recovery divergence shows up as a hash mismatch, not a tolerance
// question. Strategy, steps, and the chaos spec are filled in by the
// caller; the data depends only on seed.
func rawChaosSpec(seed int64) service.JobSpec {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	iters, elems := 240, 64
	ind := make([][]int32, 2)
	for r := range ind {
		ind[r] = make([]int32, iters)
		for i := range ind[r] {
			ind[r][i] = int32(rng.Intn(elems))
		}
	}
	w := make([]float64, iters)
	for i := range w {
		w[i] = float64(1 + rng.Intn(9))
	}
	return service.JobSpec{
		NumIters: iters, NumElems: elems, Ind: ind,
		Contrib: &service.ContribSpec{Kind: "weights", Weights: w},
	}
}

// streamDelta draws a sparse delta rewiring n of the spec's iterations to
// fresh random targets. The delta is NOT yet applied to the spec.
func streamDelta(rng *rand.Rand, spec *service.JobSpec, frac float64) *service.Delta {
	n := int(frac * float64(spec.NumIters))
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(spec.NumIters)[:n]
	sort.Ints(perm)
	d := &service.Delta{Changed: make([]int32, n), Values: make([][]int32, len(spec.Ind))}
	for r := range d.Values {
		d.Values[r] = make([]int32, n)
	}
	for j, it := range perm {
		d.Changed[j] = int32(it)
		for r := range d.Values {
			d.Values[r][j] = int32(rng.Intn(spec.NumElems))
		}
	}
	return d
}

// applyDeltaLocal commits a delta to the local indirection mirror, the
// same write the server performs on its resident copy.
func applyDeltaLocal(spec *service.JobSpec, d *service.Delta) {
	for j, it := range d.Changed {
		for r := range d.Values {
			spec.Ind[r][it] = d.Values[r][j]
		}
	}
}

// mixEntry is one kernel with a selection weight.
type mixEntry struct {
	kernel string
	weight int
}

// parseMix parses "mvm=1,euler=2" into a weighted kernel list.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight in %q", part)
			}
		}
		switch name {
		case "mvm", "euler", "moldyn":
		default:
			return nil, fmt.Errorf("unknown kernel %q (want mvm, euler, or moldyn)", name)
		}
		if w > 0 {
			mix = append(mix, mixEntry{kernel: name, weight: w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return mix, nil
}

// pick selects a kernel by weight.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.kernel
		}
		n -= m.weight
	}
	return mix[len(mix)-1].kernel
}

// nodeReport is the per-node slice of a cluster run.
type nodeReport struct {
	URL       string  `json:"url"`
	Jobs      int64   `json:"jobs"`
	Sheds     int64   `json:"sheds"`
	Failovers int64   `json:"failovers"` // submissions that arrived here after a prior node failed
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
}

// report is the machine-readable run summary (-json).
type report struct {
	Duration    string  `json:"duration"`
	Concurrency int     `json:"concurrency"`
	Jobs        int64   `json:"jobs"`
	Failures    int64   `json:"failures"`
	Mismatches  int64   `json:"mismatches"`
	Sheds       int64   `json:"sheds"`
	QPS         float64 `json:"qps"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	CacheRatio  float64 `json:"cache_hit_ratio"`

	// Streaming (-deltas) counters: deltas applied server-side during the
	// run, split by maintenance path, plus session reopens after 410s.
	Deltas      int64 `json:"deltas,omitempty"`
	Incremental int64 `json:"incremental_updates,omitempty"`
	Full        int64 `json:"full_reinspects,omitempty"`
	Reopens     int64 `json:"session_reopens,omitempty"`

	// Cluster (-cluster) counters: client-side failovers (a submission
	// completed on a later node after an earlier one failed at the
	// transport level) and the per-node breakdown.
	Failovers int64        `json:"failovers,omitempty"`
	Nodes     []nodeReport `json:"nodes,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8321", "irredd base URL")
	clusterFlag := flag.String("cluster", "", "comma-separated irredd base URLs: round-robin submission across the fleet with client-side failover (overrides -addr)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers")
	qps := flag.Float64("qps", 0, "target aggregate submissions/sec (0 = unpaced, full closed loop)")
	mixFlag := flag.String("mix", "mvm=1,euler=1,moldyn=1", "kernel mix as name=weight,...")
	seeds := flag.Int("seeds", 8, "distinct seeds per kernel (smaller = hotter schedule cache)")
	steps := flag.Int("steps", 3, "executor steps per job")
	maxP := flag.Int("max-p", 4, "processors drawn from 1..max-p")
	maxK := flag.Int("max-k", 2, "phase blocking factor drawn from 1..max-k")
	mvmDataset := flag.String("mvm-dataset", "S", "mvm dataset class (S, W, A, B)")
	meshDataset := flag.String("mesh-dataset", "2k", "euler/moldyn dataset (2k, 10k)")
	maxSamples := flag.Int("max-samples", 1<<16, "latency samples retained for percentiles")
	jsonOut := flag.Bool("json", false, "print the summary as JSON (for CI assertions)")
	deltasMode := flag.Bool("deltas", false, "drive streaming sessions: one session per worker, sparse indirection deltas verified against the local sequential oracle every round")
	deltaFrac := flag.Float64("delta-frac", 0.05, "fraction of iterations each -deltas round rewires")
	chaosMode := flag.Bool("chaos", false, "drive raw chaos jobs on the distributed engine (server must run with -chaos); results are verified against the locally computed sequential SHA")
	chaosRate := flag.Float64("chaos-rate", 0.05, "per-payload drop/corrupt/delay/dup probability for -chaos jobs")
	emitChaosJob := flag.Bool("emit-chaos-job", false, "print a long checkpointed chaos job spec as JSON and exit (for the CI TERM/resume check)")
	emitChaosSHA := flag.Bool("emit-chaos-sha", false, "print the sequential-oracle SHA for the -emit-chaos-job spec and exit")
	emitSessionJob := flag.Bool("emit-session-job", false, "print a session-openable raw job spec as JSON and exit (for the CI restart/410 check)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredload " + buildinfo.Get().String())
		return
	}

	// The emit modes are the shell-scriptable half of the TERM/resume check:
	// the same deterministic long job and its oracle hash, printable without
	// a server, so CI can submit with curl, kill the daemon mid-run, and
	// compare the resumed result against ground truth.
	if *emitChaosJob || *emitChaosSHA || *emitSessionJob {
		spec := rawChaosSpec(0)
		spec.P, spec.K, spec.Steps = 3, 2, *steps
		if *emitSessionJob {
			json.NewEncoder(os.Stdout).Encode(spec)
			return
		}
		if *emitChaosSHA {
			x, err := spec.SequentialRaw()
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredload: oracle: %v\n", err)
				os.Exit(2)
			}
			fmt.Println(service.HashResult(x))
			return
		}
		spec.Engine = "distributed"
		spec.CheckpointEvery = 5
		// Mostly stalls (pacing without recovery replays) plus a sprinkle of
		// real payload faults, so the job is slow enough to TERM mid-run but
		// still finishes in CI time.
		spec.Chaos = &fault.Spec{Seed: 42, StallRate: 0.4, StallMS: 10, DropRate: *chaosRate, CorruptRate: *chaosRate}
		json.NewEncoder(os.Stdout).Encode(spec)
		return
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredload: %v\n", err)
		os.Exit(2)
	}

	urls := []string{*addr}
	if *clusterFlag != "" {
		urls = urls[:0]
		for _, u := range strings.Split(*clusterFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 {
			fmt.Fprintf(os.Stderr, "irredload: -cluster: no URLs\n")
			os.Exit(2)
		}
	}
	clients := make([]*client.Client, len(urls))
	for i, u := range urls {
		clients[i] = client.New(u)
	}
	c := clients[0]
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	for i, cl := range clients {
		if err := cl.Health(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "irredload: server not reachable at %s: %v\n", urls[i], err)
			os.Exit(2)
		}
	}
	// Cache counters aggregate across the fleet: sharding moves the hits
	// to the owners, the sum is what the workload actually experienced. In
	// cluster mode an unreachable node is skipped rather than fatal — a
	// roll-restart mid-run must not abort the whole report — as long as at
	// least one node still answers.
	sumCache := func() (hits, misses int64, err error) {
		ok := 0
		var lastErr error
		for i, cl := range clients {
			m, err := cl.Metrics(context.Background())
			if err != nil {
				if len(clients) == 1 {
					return 0, 0, err
				}
				lastErr = err
				fmt.Fprintf(os.Stderr, "irredload: metrics from %s skipped: %v\n", urls[i], err)
				continue
			}
			ok++
			hits += m.Cache.Hits
			misses += m.Cache.Misses
		}
		if ok == 0 {
			return 0, 0, lastErr
		}
		return hits, misses, nil
	}
	before, err := c.Metrics(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredload: metrics: %v\n", err)
		os.Exit(2)
	}
	beforeHits, beforeMisses, err := sumCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredload: metrics: %v\n", err)
		os.Exit(2)
	}

	var (
		// Latency percentiles come from the shared reservoir estimator
		// (internal/obs), the same one irredsweep uses per cell: exact
		// order statistics up to -max-samples, unbiased sampling beyond.
		hist      = obs.NewReservoir(*maxSamples)
		mu        sync.Mutex
		firstSHA  = map[jobKey]string{}
		jobs      int64
		failures  int64
		mismatch  int64
		shedTotal int64
		reopens   int64
		failovers int64
	)

	// Per-node counters for cluster runs (index-aligned with clients).
	type nodeStats struct {
		jobs      int64
		sheds     int64
		failovers int64
		hist      *obs.Reservoir
	}
	perNode := make([]*nodeStats, len(clients))
	for i := range perNode {
		perNode[i] = &nodeStats{hist: obs.NewReservoir(4096)}
	}
	var rr int64 // round-robin cursor (under mu)

	// submit runs one submission with client-side failover: start at the
	// round-robin node, and when a node fails at the transport level (no
	// HTTP answer at all — a dead or partitioned node) move to the next.
	// An HTTP-level answer, success or error, is terminal: the fleet's own
	// router already did its server-side failovers behind it.
	submit := func(ctx context.Context, spec service.JobSpec) (*service.JobStatus, int, int, int, error) {
		mu.Lock()
		start := int(rr % int64(len(clients)))
		rr++
		mu.Unlock()
		var lastErr error
		for k := 0; k < len(clients); k++ {
			idx := (start + k) % len(clients)
			st, sheds, err := clients[idx].SubmitWaitRetry(ctx, spec)
			if err == nil {
				return st, sheds, idx, k, nil
			}
			lastErr = err
			var se *client.StatusError
			if errors.As(err, &se) || ctx.Err() != nil {
				return nil, sheds, idx, k, err
			}
		}
		return nil, 0, start, len(clients) - 1, lastErr
	}

	// Chaos mode verifies against an oracle, not against "first answer
	// seen": the expected SHA per seed is the sequential reduction computed
	// right here, so a fault-recovery bug on the server cannot hide behind
	// being consistently wrong.
	chaosWant := map[int64]string{}
	if *chaosMode {
		for s := 0; s < *seeds; s++ {
			spec := rawChaosSpec(int64(s))
			spec.P, spec.K, spec.Steps = 2, 1, *steps // strategy doesn't affect the oracle
			x, err := spec.SequentialRaw()
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredload: chaos oracle: %v\n", err)
				os.Exit(2)
			}
			chaosWant[int64(s)] = service.HashResult(x)
		}
	}

	// Pacing: a shared ticker-fed token channel. Unpaced runs use a nil
	// channel (never selected) and each worker loops as fast as the server
	// answers — the classic closed loop.
	var pace <-chan time.Time
	if *qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
		defer t.Stop()
		pace = t.C
	}

	// deltaWorker is the streaming soak loop: one resident session per
	// worker, a local indirection mirror as the oracle, one sparse delta
	// per round. The mirror is mutated BEFORE the submit, so after a 410
	// the reopen ships the already-advanced state and nothing replays.
	deltaWorker := func(w int, rng *rand.Rand) {
		// Sessions are node-resident: each delta worker pins one node
		// (spread across the fleet in cluster mode) instead of round-robin.
		c := clients[w%len(clients)]
		spec := rawChaosSpec(int64(w))
		spec.P = 1 + rng.Intn(*maxP)
		spec.K = 1 + rng.Intn(*maxK)
		spec.Steps = *steps
		var id string
		open := func() bool {
			x, err := spec.SequentialRaw()
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredload: delta oracle: %v\n", err)
				mu.Lock()
				failures++
				mu.Unlock()
				return false
			}
			want := service.HashResult(x)
			st, err := c.OpenSession(ctx, spec)
			if err != nil {
				if ctx.Err() == nil {
					mu.Lock()
					failures++
					mu.Unlock()
					fmt.Fprintf(os.Stderr, "irredload: open session: %v\n", err)
				}
				return false
			}
			id = st.ID
			mu.Lock()
			if st.ResultSHA256 != want {
				mismatch++
				fmt.Fprintf(os.Stderr, "irredload: SESSION MISMATCH open %s: %s != %s\n", st.ID, st.ResultSHA256, want)
			}
			mu.Unlock()
			return true
		}
		if !open() {
			return
		}
		defer c.CloseSession(context.Background(), id)
		for ctx.Err() == nil {
			if pace != nil {
				select {
				case <-ctx.Done():
					return
				case <-pace:
				}
			}
			d := streamDelta(rng, &spec, *deltaFrac)
			applyDeltaLocal(&spec, d)
			x, err := spec.SequentialRaw()
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredload: delta oracle: %v\n", err)
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			want := service.HashResult(x)
			t0 := time.Now()
			st, busy, err := c.SessionDeltaRetry(ctx, id, d, false)
			lat := time.Since(t0)
			mu.Lock()
			shedTotal += int64(busy)
			mu.Unlock()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				if client.IsGone(err) {
					// Evicted or the daemon restarted: the session is
					// permanently lost, fail closed and reopen from the
					// mirror's current state.
					mu.Lock()
					reopens++
					mu.Unlock()
					if !open() {
						return
					}
					continue
				}
				mu.Lock()
				failures++
				mu.Unlock()
				fmt.Fprintf(os.Stderr, "irredload: delta: %v\n", err)
				continue
			}
			hist.Add(float64(lat) / float64(time.Millisecond))
			mu.Lock()
			jobs++
			if st.ResultSHA256 != want {
				mismatch++
				fmt.Fprintf(os.Stderr, "irredload: DELTA MISMATCH session %s delta %d: %s != %s\n", id, st.Deltas, st.ResultSHA256, want)
			}
			mu.Unlock()
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			if *deltasMode {
				deltaWorker(w, rng)
				return
			}
			for {
				if pace != nil {
					select {
					case <-ctx.Done():
						return
					case <-pace:
					}
				} else if ctx.Err() != nil {
					return
				}
				var (
					spec    service.JobSpec
					key     jobKey
					wantSHA string
				)
				if *chaosMode {
					seed := int64(rng.Intn(*seeds))
					spec = rawChaosSpec(seed)
					pmax := *maxP
					if pmax < 2 {
						pmax = 2
					}
					spec.P = 2 + rng.Intn(pmax-1) // rotation needs a real ring
					spec.K = 1 + rng.Intn(*maxK)
					spec.Steps = *steps
					spec.Engine = "distributed"
					spec.Chaos = &fault.Spec{
						Seed:        seed + int64(w+1)*1000003,
						DropRate:    *chaosRate,
						CorruptRate: *chaosRate,
						DelayRate:   *chaosRate,
						DupRate:     *chaosRate,
					}
					wantSHA = chaosWant[seed]
				} else {
					kernel := pick(mix, rng)
					ds := *mvmDataset
					if kernel != "mvm" {
						ds = *meshDataset
					}
					key = jobKey{
						Kernel:  kernel,
						Dataset: ds,
						Seed:    int64(rng.Intn(*seeds)),
						P:       1 + rng.Intn(*maxP),
						K:       1 + rng.Intn(*maxK),
						Steps:   *steps,
					}
					spec = key.spec()
				}
				t0 := time.Now()
				st, sheds, nodeIdx, hops, err := submit(ctx, spec)
				lat := time.Since(t0)
				mu.Lock()
				shedTotal += int64(sheds)
				failovers += int64(hops)
				perNode[nodeIdx].sheds += int64(sheds)
				perNode[nodeIdx].failovers += int64(hops)
				mu.Unlock()
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				hist.Add(float64(lat) / float64(time.Millisecond))
				perNode[nodeIdx].hist.Add(float64(lat) / float64(time.Millisecond))
				mu.Lock()
				jobs++
				perNode[nodeIdx].jobs++
				if st.State != service.StateDone || st.ResultSHA256 == "" {
					failures++
					if st.Error != "" {
						fmt.Fprintf(os.Stderr, "irredload: job %s %s: %s\n", st.ID, st.State, st.Error)
					}
				} else if wantSHA != "" {
					// Chaos jobs: the recovered result must hash to the
					// locally computed sequential oracle.
					if st.ResultSHA256 != wantSHA {
						mismatch++
						fmt.Fprintf(os.Stderr, "irredload: CHAOS MISMATCH job %s: %s != %s\n", st.ID, st.ResultSHA256, wantSHA)
					}
				} else if prev, ok := firstSHA[key]; !ok {
					firstSHA[key] = st.ResultSHA256
				} else if prev != st.ResultSHA256 {
					mismatch++
					fmt.Fprintf(os.Stderr, "irredload: MISMATCH %+v: %s != %s\n", key, st.ResultSHA256, prev)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := c.Metrics(context.Background())
	for i := 1; err != nil && i < len(clients); i++ {
		// The first node may be mid-roll at scrape time; any live node's
		// snapshot serves for the session-delta fields.
		after, err = clients[i].Metrics(context.Background())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredload: metrics: %v\n", err)
		os.Exit(2)
	}
	afterHits, afterMisses, err := sumCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredload: metrics: %v\n", err)
		os.Exit(2)
	}
	hits := afterHits - beforeHits
	misses := afterMisses - beforeMisses

	qs := hist.Quantiles(0.5, 0.9, 0.99, 1.0)
	rep := report{
		Duration:    elapsed.Round(time.Millisecond).String(),
		Concurrency: *concurrency,
		Jobs:        jobs,
		Failures:    failures,
		Mismatches:  mismatch,
		Sheds:       shedTotal,
		QPS:         float64(jobs) / elapsed.Seconds(),
		P50ms:       qs[0], P90ms: qs[1], P99ms: qs[2], MaxMs: qs[3],
		CacheHits:   hits,
		CacheMisses: misses,
	}
	if hits+misses > 0 {
		rep.CacheRatio = float64(hits) / float64(hits+misses)
	}
	if *deltasMode {
		rep.Deltas = after.Sessions.DeltasApplied - before.Sessions.DeltasApplied
		rep.Incremental = after.Sessions.Incremental - before.Sessions.Incremental
		rep.Full = after.Sessions.FullReinspects - before.Sessions.FullReinspects
		rep.Reopens = reopens
	}
	if len(clients) > 1 {
		rep.Failovers = failovers
		for i, ns := range perNode {
			nq := ns.hist.Quantiles(0.5, 0.99)
			rep.Nodes = append(rep.Nodes, nodeReport{
				URL:       urls[i],
				Jobs:      ns.jobs,
				Sheds:     ns.sheds,
				Failovers: ns.failovers,
				P50ms:     nq[0], P99ms: nq[1],
			})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(rep)
	} else {
		fmt.Printf("irredload: %d jobs in %s (%.1f QPS, %d workers)\n",
			rep.Jobs, rep.Duration, rep.QPS, rep.Concurrency)
		fmt.Printf("  latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			rep.P50ms, rep.P90ms, rep.P99ms, rep.MaxMs)
		fmt.Printf("  cache: %d hits / %d misses (%.0f%% hit)\n",
			hits, misses, rep.CacheRatio*100)
		fmt.Printf("  sheds=%d failures=%d mismatches=%d\n",
			rep.Sheds, rep.Failures, rep.Mismatches)
		if *deltasMode {
			fmt.Printf("  deltas=%d incremental=%d full=%d reopens=%d\n",
				rep.Deltas, rep.Incremental, rep.Full, rep.Reopens)
		}
		for _, nr := range rep.Nodes {
			fmt.Printf("  node %s: jobs=%d sheds=%d failovers=%d p50=%.2fms p99=%.2fms\n",
				nr.URL, nr.Jobs, nr.Sheds, nr.Failovers, nr.P50ms, nr.P99ms)
		}
	}

	if failures > 0 || mismatch > 0 {
		os.Exit(1)
	}
}
