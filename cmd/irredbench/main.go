// Command irredbench regenerates the paper's evaluation: every figure
// (4, 5, 6, 7), the speedup tables embedded in the Section 5 text
// (T1-T3), and the repository's ablations. Output is the plain-text table
// set recorded in EXPERIMENTS.md.
//
// Usage:
//
//	irredbench                   # everything except the large class B run
//	irredbench -exp fig6-2k      # one experiment
//	irredbench -exp fig5         # the class B run (needs ~1 GB, minutes)
//	irredbench -steps 20         # faster, shorter runs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"irred/internal/bench"
	"irred/internal/buildinfo"
	"irred/internal/sparse"
)

func main() {
	exp := flag.String("exp", "default", "experiment: all | default | fig4w | fig4a | fig5 | fig6-2k | fig6-10k | fig7-2k | fig7-10k | t1 | t2 | t3 | ablations")
	steps := flag.Int("steps", 100, "timesteps per configuration")
	seed := flag.Int64("seed", 1, "dataset seed")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredbench " + buildinfo.Get().String())
		return
	}

	opt := bench.Options{Steps: *steps, Seed: *seed}
	which := strings.ToLower(*exp)
	run := func(name string) bool {
		return which == name || which == "all" || (which == "default" && name != "fig5")
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "irredbench:", err)
		os.Exit(1)
	}
	emitCSV := func(f *bench.Figure) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, f.ID+".csv")
		if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if run("fig4w") || which == "t1" {
		f, err := bench.Fig4(sparse.ClassW, opt)
		if err != nil {
			fail(err)
		}
		if which != "t1" {
			fmt.Println(f.Render())
			fmt.Println(f.Plot(16))
		}
		fmt.Println(bench.MVMTable(f, "W"))
		emitCSV(f)
	}
	if run("fig4a") {
		f, err := bench.Fig4(sparse.ClassA, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
		fmt.Println(bench.MVMTable(f, "A"))
		emitCSV(f)
	}
	if which == "fig5" || which == "all" {
		f, err := bench.Fig5(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
		emitCSV(f)
	}
	if run("fig6-2k") || which == "t2" {
		f, err := bench.Fig6(false, opt)
		if err != nil {
			fail(err)
		}
		if which != "t2" {
			fmt.Println(f.Render())
			fmt.Println(f.Plot(16))
		}
		fmt.Println(bench.SpeedupTable(f, bench.PaperEuler2K))
		emitCSV(f)
	}
	if run("fig6-10k") || which == "t2" {
		f, err := bench.Fig6(true, opt)
		if err != nil {
			fail(err)
		}
		if which != "t2" {
			fmt.Println(f.Render())
			fmt.Println(f.Plot(16))
		}
		fmt.Println(bench.SpeedupTable(f, bench.PaperEuler10K))
		emitCSV(f)
	}
	if run("fig7-2k") || which == "t3" {
		f, err := bench.Fig7(false, opt)
		if err != nil {
			fail(err)
		}
		if which != "t3" {
			fmt.Println(f.Render())
		}
		fmt.Println(bench.SpeedupTable(f, bench.PaperMoldyn2K))
		emitCSV(f)
	}
	if run("fig7-10k") || which == "t3" {
		f, err := bench.Fig7(true, opt)
		if err != nil {
			fail(err)
		}
		if which != "t3" {
			fmt.Println(f.Render())
		}
		fmt.Println(bench.SpeedupTable(f, bench.PaperMoldyn10K))
		emitCSV(f)
	}
	if run("ablations") {
		f, err := bench.AblationK(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Render())
		_, txt, err := bench.AblationAdaptive(opt, 16)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
		txt, err = bench.AblationInspector(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
		txt, err = bench.AblationEdgeOrder(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
		txt, err = bench.AblationPartition(opt, 16)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
		txt, err = bench.AblationMachine(opt, 16)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
		txt, err = bench.AblationIncremental(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(txt)
	}
}
