// Command irredlint runs the IRL static analyzers over one or more source
// files and reports findings with stable diagnostic codes.
//
// Usage:
//
//	irredlint [-format text|json] [-codes] [-prove] [-fix] [file.irl ...]
//
// With no files, source is read from standard input. -format selects the
// output encoding: "text" (default) renders human-readable findings,
// "json" emits them as a JSON array for tooling (-json is a legacy alias
// for -format json). -codes prints the catalogue of diagnostic codes
// (source analyzers and schedule-verifier invariants) and exits. -prove
// first model-checks the systolic ownership protocol over every (P <= 8,
// k <= 4) strategy — exhaustively verifying the rotation, single-writer
// and bijection invariants the runtime relies on — and additionally
// proves the fold-schedule equivalence W6: for every builtin reduction
// operator, the rotation-order and tree-order folds are bitwise-equal to
// the sequential fold over the same strategy space. It also discharges
// the reuse soundness check W8: every inter-loop schedule-reuse grant of
// a scenario family is compared against brute-force per-loop inspection
// for every strategy, and every stale refusal is confirmed to actually
// change the schedule. It fails the run if any strategy violates an
// invariant, before linting the files as usual.
// -fix removes dataflow-dead statements (IRL007/IRL009/IRL014) from the
// named files in place (or from stdin to stdout) instead of reporting.
// The exit status is 1 when any file fails to parse or any finding is
// Error-level, 0 otherwise (warnings and notes do not fail the run).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"irred/internal/buildinfo"
	"irred/internal/dataflow"
	"irred/internal/lint"
)

func main() {
	asJSON := flag.Bool("json", false, "emit findings as a JSON array (alias for -format json)")
	format := flag.String("format", "", "output format: text or json")
	codes := flag.Bool("codes", false, "list all diagnostic codes and exit")
	prove := flag.Bool("prove", false, "model-check the ownership protocol, fold equivalence and reuse soundness for all P <= 8, k <= 4 before linting")
	fix := flag.Bool("fix", false, "remove dataflow-dead statements in place instead of reporting")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredlint " + buildinfo.Get().String())
		return
	}

	switch *format {
	case "":
	case "text":
		*asJSON = false
	case "json":
		*asJSON = true
	default:
		fmt.Fprintf(os.Stderr, "irredlint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	if *codes {
		printCodes()
		return
	}

	if *prove {
		checked, violations := dataflow.ProveAll(8, 4)
		foldChecked, foldViolations := dataflow.ProveAllFold(8, 4)
		violations = append(violations, foldViolations...)
		reuseChecked, reuseViolations := dataflow.ProveAllReuse(8, 4)
		violations = append(violations, reuseViolations...)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "irredlint: prove:", v.Error())
			}
			fmt.Fprintf(os.Stderr, "irredlint: prove: %d invariant violation(s) across %d strategies\n", len(violations), checked)
			os.Exit(1)
		}
		fmt.Printf("prove: %d ownership strategies (P <= 8, k <= 4) satisfy the systolic invariants\n", checked)
		fmt.Printf("prove: %d (strategy, operator) fold schedules are bitwise-equal to the sequential fold (W6)\n", foldChecked)
		fmt.Printf("prove: %d (strategy, scenario) reuse grants match brute-force per-loop inspection (W8)\n", reuseChecked)
	}

	if *fix {
		runFix(flag.Args())
		return
	}

	var all lint.Diagnostics
	failed := false
	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		ds, err := lint.RunSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		all = ds
	} else {
		for _, name := range flag.Args() {
			src, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "irredlint:", err)
				failed = true
				continue
			}
			ds, err := lint.RunSource(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredlint: %s: %v\n", name, err)
				failed = true
				continue
			}
			for i := range ds {
				ds[i].File = name
			}
			all = append(all, ds...)
		}
	}

	if *asJSON {
		if err := all.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
	} else {
		all.Render(os.Stdout)
	}
	if failed || all.HasErrors() {
		os.Exit(1)
	}
}

// runFix applies the dead-statement fixer: in place for named files,
// stdin to stdout otherwise.
func runFix(files []string) {
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		out, _, err := lint.FixSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	failed := false
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			failed = true
			continue
		}
		out, removed, err := lint.FixSource(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredlint: %s: %v\n", name, err)
			failed = true
			continue
		}
		if removed == 0 {
			continue
		}
		if err := os.WriteFile(name, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			failed = true
			continue
		}
		fmt.Printf("%s: removed %d dead statement(s)\n", name, removed)
	}
	if failed {
		os.Exit(1)
	}
}

func printCodes() {
	fmt.Println("Source analyzers (IRL programs):")
	for _, a := range lint.Analyzers() {
		fmt.Printf("  %s  %-5s %-26s %s\n", a.Code, a.Severity, a.Name, a.Doc)
	}
	fmt.Println("\nSchedule verifier invariants (LightInspector output):")
	for _, c := range lint.VerifierCodes {
		fmt.Printf("  %s  error %s\n", c.Code, c.Doc)
	}
}
