// Command irredlint runs the IRL static analyzers over one or more source
// files and reports findings with stable diagnostic codes.
//
// Usage:
//
//	irredlint [-json] [-codes] [file.irl ...]
//
// With no files, source is read from standard input. -json emits the
// findings as a JSON array for tooling; -codes prints the catalogue of
// diagnostic codes (source analyzers and schedule-verifier invariants) and
// exits. The exit status is 1 when any file fails to parse or any finding
// is Error-level, 0 otherwise (warnings and notes do not fail the run).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"irred/internal/lint"
)

func main() {
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	codes := flag.Bool("codes", false, "list all diagnostic codes and exit")
	flag.Parse()

	if *codes {
		printCodes()
		return
	}

	var all lint.Diagnostics
	failed := false
	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		ds, err := lint.RunSource(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
		all = ds
	} else {
		for _, name := range flag.Args() {
			src, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "irredlint:", err)
				failed = true
				continue
			}
			ds, err := lint.RunSource(string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredlint: %s: %v\n", name, err)
				failed = true
				continue
			}
			for i := range ds {
				ds[i].File = name
			}
			all = append(all, ds...)
		}
	}

	if *asJSON {
		if err := all.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "irredlint:", err)
			os.Exit(1)
		}
	} else {
		all.Render(os.Stdout)
	}
	if failed || all.HasErrors() {
		os.Exit(1)
	}
}

func printCodes() {
	fmt.Println("Source analyzers (IRL programs):")
	for _, a := range lint.Analyzers() {
		fmt.Printf("  %s  %-5s %-26s %s\n", a.Code, a.Severity, a.Name, a.Doc)
	}
	fmt.Println("\nSchedule verifier invariants (LightInspector output):")
	for _, c := range lint.VerifierCodes {
		fmt.Printf("  %s  error %s\n", c.Code, c.Doc)
	}
}
