// Command irredd is the reduction-as-a-service daemon: an HTTP/JSON server
// over the paper's execution strategy with a persistent LightInspector
// schedule cache and a bounded native-engine executor pool.
//
// The paper's economics hinge on amortization — the inspector runs once and
// its schedules are reused across ~100 executor iterations. irredd extends
// that amortization across requests and across restarts: jobs whose
// indirection arrays and strategy (P, k, dist) have been seen before skip
// the inspector entirely, and with -cache-dir the warmed cache survives a
// daemon restart.
//
//	irredd -addr :8321 -workers 4 -queue 64 -cache-entries 128 -cache-dir /var/cache/irredd
//
// With -bench <dir> the daemon loads the latest BENCH_*.json trajectory
// (written by irredsweep) and jobs submitted with "auto":true get their
// (engine, P, k, dist) from the measured-fastest cell for their workload
// instead of choosing blindly; the backing cell ID is reported as
// tuned_from in the job status.
//
// Streaming sessions extend the amortization further: a client POSTs its
// base job to /v1/session once, then streams sparse indirection deltas to
// /v1/session/{id}/delta. The daemon keeps the session's schedules
// resident and revises them incrementally (Schedule.Update) instead of
// re-inspecting; deltas touching more than -session-fallback of the
// iteration space fall back to a full re-inspection. Sessions are LRU
// evicted past -max-sessions and fail closed across restarts — a lost
// session id answers 410 Gone, never a silently stale schedule.
//
// Robustness controls: -chaos opts the daemon into accepting jobs that
// carry fault-injection specs (off by default), -checkpoint-every N makes
// raw multi-sweep jobs checkpoint their reduction array to -cache-dir so a
// restarted daemon resumes them, and SIGTERM drains gracefully — /readyz
// flips to 503 for -drain-grace before the listener closes.
//
// Cluster mode turns a set of irredds into a coordinator-light fleet:
//
//	irredd -addr :8321 -cluster-node n1 \
//	       -cluster-peers n2=http://host2:8321,n3=http://host3:8321
//
// Each node routes job submissions by consistent hashing on the job's
// schedule-cache key (so the warm cache shards across the fleet), gossips
// health with its peers every -gossip-every (suspect after
// -suspect-after consecutive missed probes, dead after -dead-after; dead
// peers leave the ring), replicates job checkpoints to the key's ring
// successor, and fails jobs over — with the client seeing only a slower
// answer — when a peer dies mid-job. -cluster-url overrides the base URL
// advertised for redirects; -tenant-rate/-tenant-burst add per-tenant
// token-bucket admission keyed on the X-Irred-Tenant header;
// -cluster-chaos installs a deterministic network fault spec (net_drop,
// net_delay, partition=a~b) on inter-node hops for soak testing.
//
// With -debug-addr a second loopback listener serves pprof, expvar, and the
// phase-level span trace:
//
//	irredd -addr :8321 -debug-addr 127.0.0.1:8322
//	curl -s 'localhost:8322/debug/trace?format=table'
//
//	curl -s localhost:8321/healthz
//	curl -s -X POST 'localhost:8321/v1/jobs?wait=1' \
//	     -d '{"kernel":"mvm","dataset":"S","p":4,"k":2,"steps":5}'
//	curl -s localhost:8321/metrics
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"irred/internal/buildinfo"
	"irred/internal/cluster"
	"irred/internal/fault"
	"irred/internal/rts"
	"irred/internal/service"
)

// parsePeers decodes "-cluster-peers n2=http://host2:8321,n3=http://host3:8321".
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("entry %q: want name=url", part)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate peer %q", name)
		}
		peers[name] = strings.TrimRight(url, "/")
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (use :0 for a random port)")
	workers := flag.Int("workers", 0, "executor pool size (0 = GOMAXPROCS/2)")
	queue := flag.Int("queue", 64, "admission queue bound; beyond it jobs are shed with 429")
	cacheEntries := flag.Int("cache-entries", 128, "in-memory schedule cache entries (LRU)")
	cacheDir := flag.String("cache-dir", "", "persist cached schedules here and warm from it on start")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar, and /debug/trace on this extra listener (empty = off)")
	traceSpans := flag.Int("trace-spans", 0, "phase-trace ring capacity in spans (0 = default, <0 = disable tracing)")
	chaos := flag.Bool("chaos", false, "accept jobs carrying chaos (fault-injection) specs; off by default — chaos is a test instrument")
	maxSessions := flag.Int("max-sessions", 0, "resident streaming sessions before LRU eviction (0 = default 64)")
	sessionFallback := flag.Float64("session-fallback", 0, "delta fraction beyond which a session re-inspects instead of updating incrementally (0 = default 0.25)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint raw multi-sweep jobs every N sweeps (0 = only when the job asks; needs -cache-dir)")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "on SIGTERM, keep serving with /readyz=503 this long before closing the listener")
	benchDir := flag.String("bench", "", `BENCH trajectory directory: jobs submitted with "auto":true are tuned from the latest BENCH_*.json here`)
	clusterNode := flag.String("cluster-node", "", "this node's name in a cluster (empty = single-node mode)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated name=url peer list (cluster mode)")
	clusterURL := flag.String("cluster-url", "", "base URL to advertise for redirects (default http://<resolved addr>)")
	clusterRedirect := flag.Bool("cluster-redirect", false, "answer 307 redirects to the owner instead of proxying")
	gossipEvery := flag.Duration("gossip-every", time.Second, "health gossip probe period (cluster mode)")
	suspectAfter := flag.Int("suspect-after", 2, "consecutive missed probes before a peer is suspect")
	deadAfter := flag.Int("dead-after", 4, "consecutive missed probes before a peer is dead and leaves the ring")
	clusterChaos := flag.String("cluster-chaos", "", "deterministic network fault spec for inter-node hops, e.g. 'seed=7,net_drop=0.05,partition=n1~n2'")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission tokens per second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 8, "per-tenant admission burst")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("irredd " + buildinfo.Get().String())
		return
	}

	// The serving path executes native and distributed only, so the tuner
	// is built with that allowlist: picks measured on tree-fold or the
	// interpreter never reach the pool.
	var tuner *rts.Tuner
	if *benchDir != "" {
		tn, path, err := rts.NewTunerFromDir(*benchDir, rts.TunerOptions{
			Engines: []string{"native", "distributed"},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredd: -bench %s: %v\n", *benchDir, err)
			os.Exit(1)
		}
		tuner = tn
		log.Printf("irredd: auto-tuning from %s (%d measured workloads)", path, len(tn.Workloads()))
	}

	// The listener comes first in cluster mode: the advertised URL defaults
	// to the resolved address, which only exists once the port is bound.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredd: %v\n", err)
		os.Exit(1)
	}

	opt := service.Options{
		Workers:         *workers,
		QueueLen:        *queue,
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		TraceSpans:      *traceSpans,
		AllowChaos:      *chaos,
		CheckpointEvery: *checkpointEvery,
		Tuner:           tuner,

		MaxSessions:         *maxSessions,
		SessionFallbackFrac: *sessionFallback,
	}

	// Cluster mode wraps the service handler with the routing/gossip node.
	// The node is built first because the service takes its replication
	// hooks at construction time.
	var node *cluster.Node
	if *clusterNode != "" {
		peers, err := parsePeers(*clusterPeers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredd: -cluster-peers: %v\n", err)
			os.Exit(1)
		}
		selfURL := *clusterURL
		if selfURL == "" {
			selfURL = "http://" + ln.Addr().String()
		}
		var inj *fault.Injector
		if *clusterChaos != "" {
			spec, err := fault.ParseSpec(*clusterChaos)
			if err != nil {
				fmt.Fprintf(os.Stderr, "irredd: -cluster-chaos: %v\n", err)
				os.Exit(1)
			}
			inj = fault.New(spec)
			log.Printf("irredd: cluster network chaos ENABLED: %s", spec.String())
		}
		node, err = cluster.New(cluster.Config{
			Self:         *clusterNode,
			SelfURL:      selfURL,
			Peers:        peers,
			GossipEvery:  *gossipEvery,
			SuspectAfter: *suspectAfter,
			DeadAfter:    *deadAfter,
			Redirect:     *clusterRedirect,
			Chaos:        inj,
			TenantRate:   *tenantRate,
			TenantBurst:  *tenantBurst,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredd: %v\n", err)
			os.Exit(1)
		}
		opt.Replicate = node.Replicate
		opt.FetchReplica = node.FetchReplica
	}

	svc, err := service.New(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irredd: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()

	handler := svc.Handler()
	if node != nil {
		node.Attach(svc)
		node.Start()
		defer node.Close()
		handler = node.Handler()
		log.Printf("irredd: cluster node %q (%d peers, gossip every %s)",
			*clusterNode, len(node.Peers()), *gossipEvery)
	}

	// The resolved address line is load-bearing: scripts starting irredd on
	// :0 parse it to find the port.
	log.Printf("irredd: listening on http://%s", ln.Addr())
	if st := svc.Cache().Stats(); st.Entries > 0 {
		log.Printf("irredd: schedule cache warmed with %d entries from %s", st.Entries, *cacheDir)
	}
	if *chaos {
		log.Printf("irredd: chaos injection ENABLED (jobs may carry fault specs)")
	}

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// The debug listener is separate from the API listener on purpose: it
	// can stay loopback-only (or firewalled) while the API is exposed, and
	// profiling traffic never competes with job submissions for the same
	// accept queue.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irredd: debug listener: %v\n", err)
			os.Exit(1)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		expvar.Publish("irredd", expvar.Func(func() any { return svc.Metrics() }))
		dmux.Handle("/debug/vars", expvar.Handler())
		dmux.Handle("/debug/trace", svc.TraceHandler())
		log.Printf("irredd: debug listener on http://%s", dln.Addr())
		go func() {
			dsrv := &http.Server{Handler: dmux}
			if err := dsrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("irredd: debug listener: %v", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		// Drain in the load-balancer-friendly order: fail readiness first,
		// keep serving through the grace window so health checkers observe
		// the 503 and stop routing, then close the listener and wait for
		// in-flight requests. Checkpointed jobs interrupted here are resumed
		// by the next daemon over the same -cache-dir.
		log.Printf("irredd: %v: draining (readyz now 503, grace %s)", sig, *drainGrace)
		svc.BeginDrain()
		time.Sleep(*drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), service.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("irredd: shutdown: %v", err)
		}
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "irredd: %v\n", err)
			os.Exit(1)
		}
	}
}
