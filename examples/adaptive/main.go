// Adaptive irregular reduction: the scenario the paper names as its
// motivation and future work. The interaction structure changes every few
// timesteps (here: molecules move and the neighbour list is rebuilt), so
// runtime preprocessing must be repeated at each adaptation.
//
// The paper's strategy re-runs only the LightInspector — a purely local,
// communication-free pass — while the classic inspector/executor must
// rebuild its communication schedule with an interprocessor exchange.
// This example runs a real adaptive moldyn simulation natively (rebuilding
// the neighbour list and re-inspecting), then prints the modelled
// amortized-cost comparison.
package main

import (
	"context"
	"fmt"
	"log"

	"irred/internal/bench"
	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/moldyn"
	"irred/internal/rts"
	"irred/internal/service"
)

func main() {
	// A small adaptive run: 5 epochs of 4 timesteps; after each epoch the
	// molecules have moved, the neighbour list is rebuilt, and the
	// LightInspector re-runs on the new indirection arrays.
	sys := moldyn.Generate(6, 1, 0.02, 1)
	fmt.Printf("adaptive moldyn: %d molecules, initially %d interactions\n",
		sys.N, sys.NumInteractions())

	const procs, k, epochs, stepsPerEpoch = 4, 2, 5, 4
	for epoch := 0; epoch < epochs; epoch++ {
		md := kernels.NewMoldyn(sys)
		nat, pos, vel, err := md.NewNative(procs, k, inspector.Cyclic)
		if err != nil {
			log.Fatal(err)
		}
		if err := nat.Run(stepsPerEpoch); err != nil {
			log.Fatal(err)
		}
		// Fold the evolved state back and adapt: rebuild the neighbour
		// list from the new positions.
		copy(sys.Pos, pos)
		copy(sys.Vel, vel)
		before := sys.NumInteractions()
		sys.BuildNeighbors()
		fmt.Printf("epoch %d: %d -> %d interactions after motion; LightInspector re-run (local only)\n",
			epoch, before, sys.NumInteractions())

		// The re-run is this cheap: one pass over the processor's pairs.
		l := kernels.NewMoldyn(sys).Loop(procs, k, inspector.Cyclic)
		scheds, err := l.Schedules()
		if err != nil {
			log.Fatal(err)
		}
		if err := scheds[0].Check(l.Ind...); err != nil {
			log.Fatal(err)
		}
	}

	// The incremental LightInspector (the paper's stated future work,
	// implemented here): when only a few interactions change, update the
	// existing schedule in O(changed) instead of re-inspecting everything.
	l := kernels.NewMoldyn(sys).Loop(procs, k, inspector.Cyclic)
	scheds, err := l.Schedules()
	if err != nil {
		log.Fatal(err)
	}
	// Rewire 50 interactions and update in place.
	changed := make([]int32, 0, 50)
	for j := 0; j < 50; j++ {
		i := (j * 97) % len(sys.I1)
		sys.I2[i] = int32((int(sys.I2[i]) + 1 + j) % sys.N)
		if sys.I2[i] == sys.I1[i] {
			sys.I2[i] = int32((int(sys.I2[i]) + 1) % sys.N)
		}
		changed = append(changed, int32(i))
	}
	for p, s := range scheds {
		if err := s.Update(changed, sys.I1, sys.I2); err != nil {
			log.Fatal(err)
		}
		if err := s.Check(sys.I1, sys.I2); err != nil {
			log.Fatalf("proc %d after incremental update: %v", p, err)
		}
	}
	fmt.Printf("\nincremental LightInspector: %d changed interactions folded into the\n", len(changed))
	fmt.Println("existing schedules in O(changed) time; all invariants re-verified.")

	// Modelled amortized comparison against the classic inspector/executor
	// on the euler mesh (the paper's Section 5.4.3 discussion).
	fmt.Println()
	_, txt, err := bench.AblationAdaptive(bench.Options{Steps: 30, Seed: 1}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(txt)

	// And the headline property, measured: the phase strategy's traffic
	// does not change when the indirection arrays do.
	l1 := kernels.NewMoldyn(moldyn.Generate(6, 1, 0.02, 1)).Loop(8, 2, inspector.Cyclic)
	l2 := kernels.NewMoldyn(moldyn.Generate(6, 1, 0.02, 99)).Loop(8, 2, inspector.Cyclic)
	r1, err := rts.RunSim(l1, rts.SimOptions{Steps: 10})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := rts.RunSim(l2, rts.SimOptions{Steps: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraffic with dataset A: %.0f bytes/step; with dataset B: %.0f bytes/step\n",
		r1.BytesPerStep, r2.BytesPerStep)
	if r1.BytesPerStep == r2.BytesPerStep {
		fmt.Println("identical — communication is independent of the indirection contents.")
	}

	streamingSession()
}

// streamingSession is the service-level version of the same adaptivity:
// instead of re-submitting the whole workload each time the mesh refines,
// the client opens one session and streams sparse deltas. The daemon keeps
// the schedules resident and revises them with Schedule.Update; only a
// delta past the fallback fraction pays for a full re-inspection.
func streamingSession() {
	fmt.Println("\nstreaming session over an adapting mesh (in-process daemon):")

	svc, err := service.New(service.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	m := mesh.Generate(300, 1400, 7)
	w := make([]float64, m.NumEdges())
	for i := range w {
		w[i] = float64(1 + i%7) // integral weights: results compare bitwise
	}
	spec := service.JobSpec{
		NumIters: m.NumEdges(), NumElems: m.NumNodes,
		Ind:     [][]int32{m.I1, m.I2},
		Contrib: &service.ContribSpec{Kind: "weights", Weights: w},
		P:       4, K: 2, Dist: "cyclic", Steps: 2,
	}
	ctx := context.Background()
	st, err := svc.OpenSession(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  opened %s: %d edges inspected once (%.2fms), result %s\n",
		st.ID, m.NumEdges(), st.InspectMS, st.ResultSHA256[:12])

	// Refine the mesh for a few steps at 2% per step: each Adapt returns
	// the changed edge list, which ships as a sparse delta — no
	// re-inspection, no re-upload of the other 98%.
	for step := 0; step < 4; step++ {
		changed := m.Adapt(step, 0.02, 7)
		d := &service.Delta{Changed: changed, Values: make([][]int32, 2)}
		for r, col := range [][]int32{m.I1, m.I2} {
			d.Values[r] = make([]int32, len(changed))
			for j, it := range changed {
				d.Values[r][j] = col[it]
			}
		}
		if st, err = svc.ApplyDelta(ctx, st.ID, d, false); err != nil {
			log.Fatal(err)
		}
		path := "full re-inspection"
		if st.LastIncremental {
			path = "incremental update"
		}
		fmt.Printf("  delta %d: %4d edges rewired (%.1f%%) -> %s in %.2fms, result %s\n",
			st.Deltas, len(changed), st.LastFrac*100, path, st.InspectMS, st.ResultSHA256[:12])
	}

	// The same schedules absorbed every delta: the session never paid the
	// open-time inspection again.
	fmt.Printf("  session totals: %d deltas, %d incremental, %d full re-inspections\n",
		st.Deltas, st.Incremental, st.Full)
	if err := svc.CloseSession(st.ID); err != nil {
		log.Fatal(err)
	}
}
