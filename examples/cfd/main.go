// CFD example: the paper's euler kernel end-to-end on the 2K unstructured
// mesh (2,800 nodes, 17,377 edges) — generate the mesh, run the flux
// reduction in parallel under each of the paper's strategies on the
// simulated EARTH machine, then verify the native parallel execution
// against the sequential solver.
package main

import (
	"fmt"
	"log"
	"math"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/mesh"
	"irred/internal/rts"
)

func main() {
	nodes, edges := mesh.Paper2K()
	m := mesh.Generate(nodes, edges, 1)
	eu := kernels.NewEuler(m, 1)
	fmt.Printf("euler on a %d-node, %d-edge unstructured mesh\n\n", nodes, edges)

	// Simulated strategy comparison at 16 processors, 50 timesteps.
	const steps = 50
	seqCycles, seqSecs := rts.RunSequentialSim(eu.Loop(1, 1, inspector.Block), rts.SimOptions{Steps: steps})
	fmt.Printf("sequential (simulated i860XP): %.2fs for %d steps\n\n", seqSecs, steps)

	type strat struct {
		name string
		k    int
		d    inspector.Dist
	}
	fmt.Printf("%6s %12s %10s %14s\n", "strat", "time", "speedup", "balance(max/avg)")
	for _, s := range []strat{
		{"1c", 1, inspector.Cyclic},
		{"2c", 2, inspector.Cyclic},
		{"4c", 4, inspector.Cyclic},
		{"2b", 2, inspector.Block},
	} {
		res, err := rts.RunSim(eu.Loop(16, s.k, s.d), rts.SimOptions{Steps: steps})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6s %11.2fs %9.2fx %10d/%.1f\n",
			s.name, res.Seconds, float64(seqCycles)/float64(res.Cycles),
			res.MaxPhaseIters, res.AvgPhaseIters)
	}

	// Native verification: 10 timesteps on 8 goroutine processors.
	want := eu.RunSequential(10)
	nat, q, err := eu.NewNative(8, 2, inspector.Cyclic)
	if err != nil {
		log.Fatal(err)
	}
	if err := nat.Run(10); err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range q {
		if d := math.Abs(q[i]-want[i]) / (1 + math.Abs(want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nnative 8-way run after 10 steps: max relative deviation from sequential = %.2e\n", maxDiff)
	if maxDiff > 1e-9 {
		log.Fatal("verification failed")
	}
	fmt.Println("parallel phase execution reproduces the sequential solver state.")
}
