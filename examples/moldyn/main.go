// Molecular dynamics example: the paper's moldyn kernel — a
// Lennard-Jones force reduction over a cutoff interaction list — run
// natively in parallel with physical sanity checks (momentum
// conservation), plus the simulated strategy comparison on the paper's 2K
// dataset (2,916 molecules, 26,244 interactions).
package main

import (
	"fmt"
	"log"
	"math"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/moldyn"
	"irred/internal/rts"
)

func main() {
	sys := moldyn.Paper2K(1)
	md := kernels.NewMoldyn(sys)
	fmt.Printf("moldyn: %d molecules on an FCC lattice, %d cutoff interactions\n\n",
		sys.N, sys.NumInteractions())

	// Native run: 20 timesteps on 8 processors, k=2 cyclic.
	const steps = 20
	nat, pos, vel, err := md.NewNative(8, 2, inspector.Cyclic)
	if err != nil {
		log.Fatal(err)
	}
	if err := nat.Run(steps); err != nil {
		log.Fatal(err)
	}

	// Physics check 1: total momentum is conserved (forces are equal and
	// opposite through the two indirection references).
	var p0, p1 [3]float64
	for i := 0; i < sys.N; i++ {
		for c := 0; c < 3; c++ {
			p0[c] += sys.Vel[3*i+c]
			p1[c] += vel[3*i+c]
		}
	}
	fmt.Printf("momentum before: (%.3e %.3e %.3e)\n", p0[0], p0[1], p0[2])
	fmt.Printf("momentum after:  (%.3e %.3e %.3e)\n", p1[0], p1[1], p1[2])
	for c := 0; c < 3; c++ {
		if math.Abs(p1[c]-p0[c]) > 1e-6*float64(sys.N) {
			log.Fatal("momentum drifted: parallel reduction lost contributions")
		}
	}

	// Physics check 2: parallel == sequential trajectories.
	wantPos, _ := md.RunSequential(steps)
	var maxDiff float64
	for i := range pos {
		if d := math.Abs(pos[i] - wantPos[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max position deviation from sequential after %d steps: %.2e\n\n", steps, maxDiff)
	if maxDiff > 1e-8 {
		log.Fatal("trajectory diverged")
	}

	// Simulated strategy comparison at 32 processors — the configuration
	// where the paper reports its best relative speedups for moldyn.
	seqCycles, seqSecs := rts.RunSequentialSim(md.Loop(1, 1, inspector.Block), rts.SimOptions{Steps: 100})
	fmt.Printf("simulated sequential: %.2fs / 100 steps (paper: 10.80s)\n", seqSecs)
	for _, s := range []struct {
		name string
		k    int
		d    inspector.Dist
	}{{"1c", 1, inspector.Cyclic}, {"2c", 2, inspector.Cyclic}, {"4c", 4, inspector.Cyclic}, {"2b", 2, inspector.Block}} {
		res, err := rts.RunSim(md.Loop(32, s.k, s.d), rts.SimOptions{Steps: 100})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s @32P: %.2fs, speedup %.2fx\n", s.name, res.Seconds, float64(seqCycles)/float64(res.Cycles))
	}
}
