// Conjugate gradient: the application the paper's mvm kernel was extracted
// from (the NAS CG benchmark). Each CG iteration's sparse matrix-vector
// product runs on the phase runtime — the p vector rotates among the
// processors in k*P phases exactly as in Section 5.3 — while the dot
// products and vector updates are regular local loops. The parallel solve
// is verified against a plain sequential CG.
package main

import (
	"fmt"
	"log"
	"math"

	"irred/internal/inspector"
	"irred/internal/kernels"
	"irred/internal/rts"
	"irred/internal/sparse"
)

func main() {
	const procs, k = 8, 2
	a := sparse.Generate(sparse.Class{Name: "cg", N: 4000, NNZ: 60000}, 1)
	fmt.Printf("conjugate gradient on a %dx%d matrix with %d nonzeros, %d processors (k=%d)\n",
		a.N, a.N, a.NNZ(), procs, k)

	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}

	xPar, itPar := cgParallel(a, b, procs, k, 1e-10, 200)
	xSeq, itSeq := cgSequential(a, b, 1e-10, 200)

	var maxDiff float64
	for i := range xPar {
		if d := math.Abs(xPar[i] - xSeq[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("parallel CG: %d iterations;  sequential CG: %d iterations\n", itPar, itSeq)
	fmt.Printf("max |x_par - x_seq| = %.2e\n", maxDiff)
	if maxDiff > 1e-6 {
		log.Fatal("parallel CG diverged from sequential")
	}

	// Residual check: ||Ax - b|| must be tiny.
	r := make([]float64, a.N)
	a.MulVec(xPar, r)
	var nrm float64
	for i := range r {
		d := r[i] - b[i]
		nrm += d * d
	}
	fmt.Printf("residual ||Ax-b|| = %.2e\n", math.Sqrt(nrm))
	fmt.Println("the matvec inside every CG iteration ran on the rotating-portion phase runtime.")
}

// cgParallel runs CG with the matvec on the native phase engine.
func cgParallel(a *sparse.CSR, b []float64, procs, k int, tol float64, maxIter int) ([]float64, int) {
	mv := kernels.NewMVM(a)
	loop := mv.Loop(procs, k, inspector.Block)
	nat, err := rts.NewNative(loop)
	if err != nil {
		log.Fatal(err)
	}
	n := a.N
	q := make([]float64, n) // q = A*p, assembled by the update hook
	partial := make([][]float64, procs)
	for i := range partial {
		partial[i] = make([]float64, n)
	}
	nat.Consume = func(p, i int, vals []float64) {
		partial[p][mv.Rows[i]] += a.Val[i] * vals[0]
	}
	nat.Update = func(p, step int) {
		lo, _ := loop.Cfg.PortionBounds(loop.Cfg.PortionAt(p, 0))
		_, hi := loop.Cfg.PortionBounds(loop.Cfg.PortionAt(p, loop.Cfg.K-1))
		for r := lo; r < hi; r++ {
			var s float64
			for pp := range partial {
				s += partial[pp][r]
				partial[pp][r] = 0
			}
			q[r] = s
		}
	}
	matvec := func(p []float64) []float64 {
		copy(nat.X, p) // load the vector to rotate
		if err := nat.Run(1); err != nil {
			log.Fatal(err)
		}
		return q
	}
	return cg(a.N, b, matvec, tol, maxIter)
}

// cgSequential runs CG with the plain CSR matvec.
func cgSequential(a *sparse.CSR, b []float64, tol float64, maxIter int) ([]float64, int) {
	y := make([]float64, a.N)
	return cg(a.N, b, func(p []float64) []float64 {
		a.MulVec(p, y)
		return y
	}, tol, maxIter)
}

// cg is the textbook conjugate gradient iteration over an abstract matvec.
func cg(n int, b []float64, matvec func([]float64) []float64, tol float64, maxIter int) ([]float64, int) {
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rs := dot(r, r)
	it := 0
	for ; it < maxIter && math.Sqrt(rs) > tol; it++ {
		q := matvec(p)
		alpha := rs / dot(p, q)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rs2 := dot(r, r)
		beta := rs2 / rs
		rs = rs2
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return x, it
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
