// Compiler example: take an IRL program whose loop updates two reference
// groups, run the paper's Section 4 pipeline (section extraction,
// reference grouping, loop fission with temporary-array introduction,
// Threaded-C generation), execute the compiled plans on the phase runtime,
// and verify against direct interpretation.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"irred/internal/core"
	"irred/internal/inspector"
	"irred/internal/interp"
	"irred/internal/lang"
	"irred/internal/lint"
	"irred/internal/rts"
)

// Two reference groups: x is updated through both columns of ia (a mesh
// edge loop) while z is updated through ja (a different interaction list).
// The scalar t feeds both, so fission must introduce a temporary array.
const src = `
param n, m
array ia[n, 2] int
array ja[n] int
array x[m]
array z[m]
array y[n]

loop i = 0, n {
    t = y[i] * 2 + 1
    x[ia[i, 0]] += t
    x[ia[i, 1]] += t * 0.5
    z[ja[i]] -= t
}
`

func main() {
	// Lint first: the full pipeline is parse -> lint -> analyze -> fission
	// -> codegen. Error findings would make the program illegal under the
	// paper's restrictions; here the loop is legal, so lint only notes that
	// it updates two reference groups and fission will split it.
	diags, err := lint.RunSource(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== lint ===")
	if len(diags) == 0 {
		fmt.Println("no findings")
	} else {
		fmt.Print(diags.RenderString())
	}
	if diags.HasErrors() {
		log.Fatal("lint found errors; refusing to compile")
	}

	unit, err := core.CompileIRL(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== analysis (sections and reference groups) ===")
	fmt.Print(unit.Describe())

	fmt.Println("\n=== program after loop fission ===")
	fmt.Print(lang.Format(unit.Fissioned))

	fmt.Println("\n=== generated Threaded-C (first irregular plan) ===")
	for _, p := range unit.Plans {
		if p.Kind == 0 { // codegen.Irregular
			fmt.Print(p.ThreadedC())
			break
		}
	}

	// Bind data and execute: regular plans through the interpreter,
	// irregular plans on the native phase runtime at P=4, k=2.
	const n, m = 1000, 128
	rng := rand.New(rand.NewSource(7))
	env := interp.NewEnv(unit.Fissioned)
	env.SetParam("n", n)
	env.SetParam("m", m)
	ia := make([]int32, 2*n)
	ja := make([]int32, n)
	y := make([]float64, n)
	for i := range ia {
		ia[i] = int32(rng.Intn(m))
	}
	for i := range ja {
		ja[i] = int32(rng.Intn(m))
	}
	for i := range y {
		y[i] = rng.Float64()
	}
	must(env.BindInt("ia", ia))
	must(env.BindInt("ja", ja))
	must(env.BindFloat("y", y))
	must(env.Alloc())

	for _, p := range unit.Plans {
		if p.Kind != 0 {
			must(env.RunLoop(p.Loop)) // prologue / regular loops
			continue
		}
		loop, contribs, err := p.BuildLoop(env, 4, 2, inspector.Cyclic)
		must(err)
		nat, err := rts.NewNative(loop)
		must(err)
		nat.Contribs = contribs
		must(nat.Run(1))
		must(p.Scatter(env, nat.X))
	}

	// Reference: interpret the original program directly.
	ref := interp.NewEnv(unit.Source)
	ref.SetParam("n", n)
	ref.SetParam("m", m)
	must(ref.BindInt("ia", ia))
	must(ref.BindInt("ja", ja))
	must(ref.BindFloat("y", y))
	must(ref.Alloc())
	must(ref.Run())

	for _, a := range []string{"x", "z"} {
		var maxd float64
		for i := range ref.Floats[a] {
			if d := math.Abs(env.Floats[a][i] - ref.Floats[a][i]); d > maxd {
				maxd = d
			}
		}
		fmt.Printf("\narray %s: compiled parallel execution vs interpreter, max diff %.2e", a, maxd)
		if maxd > 1e-9 {
			log.Fatalf("array %s diverged", a)
		}
	}
	fmt.Println("\n\ncompiled phase execution matches the interpreted program.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
