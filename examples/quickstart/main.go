// Quickstart: the paper's worked example shape (Figure 3) through the
// public API — a 20-edge, 8-node mesh reduced on 2 processors with k = 2.
//
// It shows the three things the library does:
//  1. LightInspector: partition each processor's iterations into k*P
//     phases and set up remote buffers + copy loops, with no
//     interprocessor communication;
//  2. native execution: run the reduction on goroutines with rotating
//     portion ownership and verify against the sequential loop;
//  3. simulation: time the same program on the modelled EARTH machine.
package main

import (
	"fmt"
	"log"
	"math"

	"irred/internal/core"
)

func main() {
	// A tiny mesh: 20 edges over 8 nodes (the paper's Figure 3 example
	// runs the LightInspector on exactly this shape).
	ia1 := []int32{0, 1, 2, 3, 4, 5, 6, 7, 0, 2, 4, 6, 1, 3, 5, 0, 2, 7, 3, 6}
	ia2 := []int32{1, 2, 3, 4, 5, 6, 7, 4, 2, 4, 6, 0, 3, 5, 7, 4, 6, 1, 7, 2}
	edgeWeight := func(i int) float64 { return float64(i%5) + 1 }

	red := core.NewReduction(len(ia1), 8, ia1, ia2)
	strat := core.Strategy2C(2) // the paper's best: k=2, cyclic

	// 1. Inspect: the per-processor phase programs.
	scheds, err := red.Schedules(strat)
	if err != nil {
		log.Fatal(err)
	}
	for p, s := range scheds {
		fmt.Printf("processor %d: %d phases, remote buffer of %d slots\n",
			p, len(s.Phases), s.BufLen)
		for ph := range s.Phases {
			prog := &s.Phases[ph]
			fmt.Printf("  phase %d: iterations %v", ph, prog.Iters)
			if len(prog.Copies) > 0 {
				fmt.Printf(", copy loop %v", prog.Copies)
			}
			fmt.Println()
		}
	}

	// 2. Run natively: each edge adds its weight to both endpoints.
	x, err := red.RunNative(strat, func(_, i int, out []float64) {
		out[0] = edgeWeight(i)
		out[1] = edgeWeight(i)
	}, nil, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential loop of Figure 1.
	want := make([]float64, 8)
	for i := range ia1 {
		want[ia1[i]] += edgeWeight(i)
		want[ia2[i]] += edgeWeight(i)
	}
	for e := range want {
		if math.Abs(x[e]-want[e]) > 1e-12 {
			log.Fatalf("mismatch at node %d: %v != %v", e, x[e], want[e])
		}
	}
	fmt.Printf("\nnative result matches the sequential reduction: %v\n", x)

	// 3. Simulate on the modelled EARTH machine.
	rep, err := red.Simulate(strat, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on EARTH (%s): %.6fs for %d steps, speedup %.2fx, %.0f msgs/step\n",
		rep.Strategy, rep.Seconds, rep.Steps, rep.Speedup, rep.MsgsPerStep)
	fmt.Println("(a 20-edge toy is all overhead — phase and message costs dwarf 20 additions;")
	fmt.Println(" see examples/cfd and examples/moldyn for the paper-sized runs)")
	fmt.Println("communication volume is independent of the indirection contents —")
	fmt.Println("the same machine shape always moves the same bytes.")
}
