package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// TestQuickstartRuns executes the example in-process, capturing stdout.
// It guards the public-API surface the README points newcomers at: if
// core.NewReduction, Schedules, RunNative, or Simulate change shape, this
// fails at compile time; if the worked example stops verifying against the
// sequential loop, main() calls log.Fatal and the test dies with it.
func TestQuickstartRuns(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		outc <- buf.String()
	}()

	main()

	w.Close()
	os.Stdout = old
	out := <-outc

	for _, want := range []string{
		"processor 0:",
		"processor 1:",
		"native result matches the sequential reduction",
		"simulated on EARTH",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}
